// Package fleet is the population-scale workload engine: it drives the
// per-flow censor model with 10⁵–10⁶ concurrent simulated users and
// measures what the paper's detection pipeline does to a *population* —
// blocked-user curves over virtual time, server detection latencies,
// prober load, and the lifetime of servers that operators replace after
// blocking.
//
// The engine scales by keeping per-user cost at O(bytes of state), not
// O(goroutine): a user is ~24 bytes (an inline SplitMix64 PRNG state, a
// server index, a diurnal phase and two flags) in one flat slice, every
// wake-up is scheduled closure-free through a netsim.Wheel (O(1)
// amortized for millions of timers), first packets are synthesized into
// one reused buffer, and every output is a streaming sketch or bucketed
// counter (internal/stats) — no per-flow record is ever materialized.
//
// Parallelism: the population is partitioned into Config.Shards
// space-sharded sub-simulations — users pinned to disjoint server +
// censor shards are causally independent, so each shard runs
// single-threaded in virtual time on its own simulator, network,
// censor, timing wheel and RNG streams, and finished shard Reports
// merge through order-independent reductions (Report.Merge). The
// worker pool executing the shards is sized by WithWorkers and is
// pure execution policy: the shard plan is fixed by Config, so any
// worker count reproduces the -workers 1 report byte-for-byte.
//
// Determinism: all randomness forks off Config.Seed via seedfork.
// With one shard (the default) the stream labels are the historical
// "fleet.gfw", "fleet.trafficgen", "fleet.mix" and ("fleet.user", i);
// with more, each shard forks its parent from ("fleet.shard", s) and
// feeds the same labels under it (user labels carry global indices).
// The per-server implementation mix is always drawn from one global
// "fleet.mix" stream, so the population's composition is independent
// of the shard count.
package fleet

import (
	"fmt"
	"math"
	"time"

	"sslab/internal/detector"
	"sslab/internal/gfw"
	"sslab/internal/metrics"
	"sslab/internal/netsim"
	"sslab/internal/reaction"
	"sslab/internal/region"
	"sslab/internal/seedfork"
	"sslab/internal/sscrypto"
	"sslab/internal/stats"
	"sslab/internal/trafficgen"
)

// Config tunes a fleet run. Zero values select the population-scale
// defaults; the registry's fast preset shrinks Users and Hours.
type Config struct {
	// Seed drives all of the run's randomness.
	Seed int64
	// Users is the population size (default 100000).
	Users int
	// UsersPerServer is how many users share one Shadowsocks server
	// (default 50).
	UsersPerServer int
	// Hours is the virtual experiment length (default 24).
	Hours int
	// PeakFlowsPerHour is a user's mean flow rate at the diurnal peak
	// (default 2). Wake-ups arrive as a Poisson process at this rate and
	// are thinned by the diurnal activity curve.
	PeakFlowsPerHour float64
	// ActivityFloor is the overnight activity level as a fraction of the
	// 21:00 peak (default 0.15). Setting it to 1 disables the diurnal
	// cycle entirely (constant activity — used by the golden cross-check).
	ActivityFloor float64
	// BrowseShare is the fraction of users running the Firefox/Alexa
	// browsing workload; the rest run the paper's curl fetch loop
	// (default 0.3).
	BrowseShare float64
	// ReplaceAfterMin is how many minutes after its users first observe
	// blocking a server operator re-provisions on a fresh IP (default
	// 180). The GFW starts over on the new endpoint, as in reality.
	ReplaceAfterMin int
	// BucketMin is the width, in minutes, of the report's virtual-time
	// series buckets (default 15).
	BucketMin int
	// Shards partitions the population into that many space-sharded
	// sub-simulations (default 1): each shard owns a contiguous slice of
	// servers, their users, and its own censor, network, timing wheel and
	// RNG streams forked under ("fleet.shard", s). Shards is science
	// config — it changes which RNG streams drive the population, so it
	// changes report bytes — whereas the worker count executing the
	// shards is an execution option (WithWorkers) and never does. Values
	// above the server count are clamped. Shards = 1 reproduces the
	// unsharded engine byte-for-byte.
	Shards int `json:",omitempty"`
	// Mix is the server implementation mix, drawn per server. Defaults
	// to DefaultMix (the paper-era version spread of §6; only the
	// replay-serving shadowsocks-python and ShadowsocksR deployments can
	// accumulate enough evidence to be blocked).
	Mix []ImplShare `json:",omitempty"`
	// GFW configures the censor. The fleet overrides two defaults:
	// Sensitivity 0 becomes 0.25 (a population run without blocking
	// measures nothing; set a negative Sensitivity to model the
	// probe-but-never-block censor), and the probe capture log is
	// disabled (nothing reads per-probe records at this scale).
	GFW gfw.Config
	// Regions optionally partitions the population into named
	// censorship regions, each with its own censor configuration and
	// timed policy schedule (see internal/region). Nil — and any
	// one-region topology with an empty schedule — reproduces the
	// non-regional engine byte-for-byte. With two or more regions the
	// Report additionally carries PerRegion rows.
	Regions *region.Topology `json:",omitempty"`
	// Impair optionally applies a link impairment profile to every link.
	Impair *netsim.LinkProfile `json:",omitempty"`
}

// ImplShare is one entry of the server implementation mix.
type ImplShare struct {
	// Impl names an implementation: a Shadowsocks flavor (libev-old,
	// libev-new, outline, sspython, ssr), an OpenVPN deployment (openvpn,
	// openvpn-auth), an obfs-style transport (obfs2, obfs4), or the
	// innocuous direct-web baseline (web).
	Impl string
	// Weight is the relative share of servers running Impl.
	Weight float64
}

// DefaultMix is the default server implementation spread: mostly
// maintained shadowsocks-libev and Outline deployments, plus the
// shadowsocks-python and ShadowsocksR long tail the paper found on the
// servers that actually got blocked (§6).
var DefaultMix = []ImplShare{
	{Impl: "libev-old", Weight: 0.15},
	{Impl: "libev-new", Weight: 0.30},
	{Impl: "outline", Weight: 0.20},
	{Impl: "sspython", Weight: 0.20},
	{Impl: "ssr", Weight: 0.15},
}

// protoKind selects a server's wire protocol family.
type protoKind uint8

const (
	// protoSS is classic Shadowsocks: first packets are random-looking
	// wire form of a tunneled workload; probes hit the reaction engine.
	protoSS protoKind = iota
	// protoOpenVPN is OpenVPN over TCP: the first packet is a client
	// hard reset; a plain server answers well-formed resets (probeable),
	// a tls-auth server drops everything unauthenticated.
	protoOpenVPN
	// protoObfs is an obfs-style fully encrypted transport: obfs2-era
	// servers accept replays and close loudly on garbage, obfs4-style
	// servers time every probe out.
	protoObfs
	// protoWeb is an ordinary web server — innocuous traffic that should
	// never be blocked; any block against it is a false positive.
	protoWeb
)

// implementations maps mix names to protocol family, reaction profile
// (Shadowsocks only), workload override and probe posture.
var implementations = map[string]struct {
	proto   protoKind
	profile reaction.Profile
	method  string
	wl      trafficgen.Workload // workload override for non-SS protocols
	silent  bool                // drops every probe (tls-auth / obfs4)
}{
	"libev-old": {proto: protoSS, profile: reaction.LibevOld, method: "aes-256-cfb"},
	"libev-new": {proto: protoSS, profile: reaction.LibevNew, method: "aes-256-gcm"},
	"outline":   {proto: protoSS, profile: reaction.Outline107, method: "chacha20-ietf-poly1305"},
	"sspython":  {proto: protoSS, profile: reaction.SSPython, method: "aes-256-cfb"},
	"ssr":       {proto: protoSS, profile: reaction.SSR, method: "aes-256-ctr"},

	"openvpn":      {proto: protoOpenVPN, wl: trafficgen.OpenVPNTCP},
	"openvpn-auth": {proto: protoOpenVPN, wl: trafficgen.OpenVPNTCPAuth, silent: true},
	"obfs2":        {proto: protoObfs, wl: trafficgen.ObfsFirst},
	"obfs4":        {proto: protoObfs, wl: trafficgen.ObfsFirst, silent: true},
	"web":          {proto: protoWeb, wl: trafficgen.WebDirect},
}

// IsInnocuous reports whether a mix implementation name denotes traffic
// that should never be blocked — blocks against it are false positives.
func IsInnocuous(impl string) bool {
	return implementations[impl].proto == protoWeb
}

func (c Config) withDefaults() Config {
	if c.Users == 0 {
		c.Users = 100000
	}
	if c.UsersPerServer == 0 {
		c.UsersPerServer = 50
	}
	if c.Hours == 0 {
		c.Hours = 24
	}
	if c.PeakFlowsPerHour == 0 {
		c.PeakFlowsPerHour = 2
	}
	if c.ActivityFloor == 0 {
		c.ActivityFloor = 0.15
	}
	if c.BrowseShare == 0 {
		c.BrowseShare = 0.3
	}
	if c.ReplaceAfterMin == 0 {
		c.ReplaceAfterMin = 180
	}
	if c.BucketMin == 0 {
		c.BucketMin = 15
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if len(c.Mix) == 0 {
		c.Mix = DefaultMix
	}
	if c.GFW.Sensitivity == 0 {
		c.GFW.Sensitivity = 0.25
	}
	return c
}

// user is the entire per-user state — kept to a couple dozen bytes so a
// million-user population costs tens of megabytes, not a goroutine and
// stack each. rng is an inline SplitMix64 state: the user's private
// randomness without a *rand.Rand allocation.
type user struct {
	rng         uint64
	server      int32
	phaseMin    int16 // personal diurnal phase jitter, ±90 minutes
	wl          uint8 // trafficgen.Workload
	blocked     bool  // currently cut off from its server
	everBlocked bool
}

// splitmix advances a SplitMix64 state and returns the next value.
func splitmix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// f64 draws uniform [0,1) from the user's inline PRNG.
func (u *user) f64() float64 {
	return float64(splitmix(&u.rng)>>11) / (1 << 53)
}

// serverRec is the per-server state: the long-lived host plus the
// current endpoint epoch (replacement moves the host to a fresh IP).
type serverRec struct {
	host      *serverHost
	ep        netsim.Endpoint
	spec      sscrypto.Spec
	wl        uint8 // workload override for non-SS protocols
	proto     protoKind
	implIdx   int32 // index into Fleet.implNames
	activated time.Time
	firstFail time.Time // first user-observed blocked flow this epoch
	replacing bool
}

// epoch records one endpoint activation: when, which implementation
// was behind it (for per-implementation block attribution), and which
// local server owned it (so a snapshot restore can re-bind every
// historical endpoint to its host — old endpoints keep serving probes
// after a replacement).
type epoch struct {
	at   time.Time
	impl int32
	srv  int32
}

// userArg / srvArg are the pre-allocated closure-free scheduling
// arguments (one each per user/server, so steady state allocates
// nothing).
type userArg struct {
	f   *Fleet
	idx int32
}

type srvArg struct {
	f   *Fleet
	idx int32
}

// Fleet is one shard of a population run in progress — with
// Config.Shards = 1 (the default), the whole run. Construct implicitly
// via Run.
type Fleet struct {
	cfg Config
	sim *netsim.Sim
	net *netsim.Network
	gfw *gfw.GFW

	// Shard identity: the shard's seedfork parent (cfg.Seed itself when
	// Shards == 1, so the single-shard engine reproduces the historical
	// RNG streams exactly) and the global server range [serverLo,
	// serverHi) this shard owns. Users follow their servers; global
	// user/server indices keep seed labels and endpoint addresses
	// identical to the unsharded engine's.
	seed     int64
	serverLo int
	serverHi int
	userLo   int
	userHi   int

	// Region identity: which topology region this unit belongs to, and
	// the region's policy schedule. policyNext is the index of the next
	// unapplied schedule event (the schedule's entire pending state —
	// events chain one AtCall at a time through parg).
	regionIdx  int
	regionName string
	schedule   region.Schedule
	parg       policyArg
	policyNext int

	// restoring suppresses build's initial event scheduling: a restored
	// unit re-arms its pending events from the snapshot instead.
	restoring bool

	wheel   *netsim.Wheel
	users   []user
	uargs   []userArg
	sargs   []srvArg
	clients []netsim.Endpoint
	servers []serverRec
	// epochs records each endpoint's activation time and implementation,
	// so BlockEvents resolve to detection latencies and per-impl blocks
	// after the run (O(servers + replacements) memory).
	epochs map[netsim.Endpoint]epoch

	tg      *trafficgen.Generator
	scratch []byte
	// specBuf/outBuf feed wake()'s batched flow submission: the spec
	// references f.scratch, and the outcome slice is reused per wake, so
	// the flow path allocates nothing in steady state (the scalar
	// Connect path allocated one netsim.Flow per wake-up).
	specBuf [1]netsim.FlowSpec
	outBuf  []netsim.Outcome
	end     time.Time

	meanGap      time.Duration
	replaceAfter time.Duration
	bucket       time.Duration

	// Streaming aggregates — the only run-long measurement state.
	flows        int64
	wakeups      int64
	blockedNow   int64
	everBlocked  int64
	replacements int64
	nextServerIP int

	flowsTS      *stats.TimeSeries
	latencies    *stats.Quantile // block time − endpoint activation, seconds
	lifetimes    *stats.Quantile // activation → first observed failure, seconds
	gapQ         *stats.Quantile // wake-up gap, seconds (mergeable across shards)
	blockedCurve []int64         // users currently cut off, sampled per bucket
	probeLoad    []int64         // probes sent per bucket
	lastProbes   int

	// Per-implementation accounting, indexed by implNames position (mix
	// order, so report rows are deterministic without sorting).
	implNames   []string
	implUsers   []int64
	implServers []int64
	implEver    []int64 // users ever blocked, by their server's impl

	mFlows        *metrics.Counter
	mWakeups      *metrics.Counter
	mBlockedUsers *metrics.Gauge
	mReplacements *metrics.Counter
}

// bindMetrics attaches the fleet's instruments to the sim's registry.
func (f *Fleet) bindMetrics() {
	f.mFlows = f.sim.Metrics.Counter("fleet.flows")
	f.mWakeups = f.sim.Metrics.Counter("fleet.wakeups")
	f.mBlockedUsers = f.sim.Metrics.Gauge("fleet.blocked_users")
	f.mReplacements = f.sim.Metrics.Counter("fleet.replacements")
}

// activity is the diurnal curve: a smooth cosine peaking at 21:00
// virtual time (plus the user's personal phase jitter), floored at
// ActivityFloor. The cosine is periodic in the day, so a negative
// remainder from the modulo is harmless.
func (f *Fleet) activity(now time.Time, phaseMin int16) float64 {
	m := (int64(now.Sub(netsim.Epoch)/time.Minute) + int64(phaseMin)) % (24 * 60)
	h := float64(m) / 60
	shape := 0.5 * (1 + math.Cos(2*math.Pi*(h-21)/24))
	floor := f.cfg.ActivityFloor
	return floor + (1-floor)*shape
}

// expGap draws the user's next wake-up gap: exponential with mean
// meanGap (Poisson arrivals at the peak rate; the diurnal curve thins).
func (f *Fleet) expGap(u *user) time.Duration {
	return time.Duration(-math.Log1p(-u.f64()) * float64(f.meanGap))
}

// runUserWake is the Wheel trampoline for user wake-ups.
func runUserWake(x any) {
	a := x.(*userArg)
	a.f.wake(a)
}

// wake is the per-user hot path: chain the next wake-up, thin by the
// diurnal curve, then (if active) emit one flow through the batched
// ingestion path and account its outcome. Steady state allocates
// nothing: the flow lives in the network's batch arena instead of one
// netsim.Flow heap allocation per wake-up.
//
//sslab:hotpath
func (f *Fleet) wake(a *userArg) {
	u := &f.users[a.idx]
	now := f.sim.Now()
	f.wakeups++
	f.mWakeups.Inc()

	gap := f.expGap(u)
	f.gapQ.Observe(gap.Seconds())
	if t := now.Add(gap); t.Before(f.end) {
		f.wheel.Schedule(t, runUserWake, a)
	}
	if u.f64() >= f.activity(now, u.phaseMin) {
		return
	}

	srv := &f.servers[u.server]
	f.scratch = f.tg.AppendProtocolFirstPacket(f.scratch[:0], srv.spec, trafficgen.Workload(u.wl))
	f.specBuf[0] = netsim.FlowSpec{Client: f.clients[a.idx], Server: srv.ep, FirstPayload: f.scratch}
	f.outBuf = f.net.ConnectBatch(f.specBuf[:], f.outBuf[:0])
	out := f.outBuf[0]
	f.flows++
	f.mFlows.Inc()
	f.flowsTS.Add(now.Sub(netsim.Epoch), 1)

	if out.Blocked {
		f.onBlockedFlow(u, srv, now)
	} else if u.blocked {
		u.blocked = false
		f.blockedNow--
		f.mBlockedUsers.Set(f.blockedNow)
	}
}

// onBlockedFlow accounts one user observing its server null-routed, and
// triggers the operator's replace-after-block behavior once per server
// epoch.
func (f *Fleet) onBlockedFlow(u *user, srv *serverRec, now time.Time) {
	if !u.blocked {
		u.blocked = true
		f.blockedNow++
		f.mBlockedUsers.Set(f.blockedNow)
		if !u.everBlocked {
			u.everBlocked = true
			f.everBlocked++
			f.implEver[srv.implIdx]++
		}
	}
	if srv.firstFail.IsZero() {
		srv.firstFail = now
	}
	if !srv.replacing {
		srv.replacing = true
		f.sim.AfterCall(f.replaceAfter, runReplace, &f.sargs[u.server])
	}
}

// runReplace is the AfterCall trampoline for server replacement.
func runReplace(x any) {
	a := x.(*srvArg)
	a.f.replace(a.idx)
}

// replace moves a blocked server to a fresh endpoint: the operator
// re-provisions, users follow (their next flows reach the new address),
// and the GFW meets an unknown server again. The finished epoch's
// lifetime (activation → first observed failure) feeds the survival
// sketch.
func (f *Fleet) replace(idx int32) {
	srv := &f.servers[idx]
	now := f.sim.Now()
	srv.replacing = false
	f.lifetimes.Observe(srv.firstFail.Sub(srv.activated).Seconds())
	srv.firstFail = time.Time{}
	f.replacements++
	f.mReplacements.Inc()

	srv.ep = f.serverEndpoint()
	srv.activated = now
	f.epochs[srv.ep] = epoch{at: now, impl: srv.implIdx, srv: idx}
	f.net.AddHost(srv.ep, srv.host)
}

// serverEndpoint mints the next server address (TEST-NET-style space,
// disjoint from client and prober addresses).
func (f *Fleet) serverEndpoint() netsim.Endpoint {
	n := f.nextServerIP
	f.nextServerIP++
	return netsim.Endpoint{
		IP:   fmt.Sprintf("198.51.%d.%d", (n/250)%250, n%250+1),
		Port: 8388,
	}
}

// runSample is the AtCall trampoline for bucket-boundary sampling.
func runSample(x any) {
	x.(*Fleet).sample()
}

// sample records the bucket series at a boundary: the blocked-user
// gauge and the probe-load delta since the previous boundary.
func (f *Fleet) sample() {
	f.blockedCurve = append(f.blockedCurve, f.blockedNow)
	probes := f.gfw.ProbesSent
	f.probeLoad = append(f.probeLoad, int64(probes-f.lastProbes))
	f.lastProbes = probes
	if next := f.sim.Now().Add(f.bucket); !next.After(f.end) {
		f.sim.AtCall(next, runSample, f)
	}
}

// Run executes one fleet experiment and reduces it to a Report. The
// variadic options configure execution only (worker pool size, metrics
// sink); every Report byte is a function of cfg alone, so any worker
// count reproduces the -workers 1 bytes exactly. Run is sugar for
// NewEngine + RunTo(End) + Report; use the Engine directly to pause,
// snapshot, or resume a run mid-flight.
func Run(cfg Config, opts ...Option) (*Report, error) {
	e, err := NewEngine(cfg, opts...)
	if err != nil {
		return nil, err
	}
	if err := e.RunTo(e.End()); err != nil {
		return nil, err
	}
	return e.Report()
}

// validate rejects configurations the engine cannot execute; called on
// the pre-defaults Config so user errors surface as errors, not
// normalized silently.
func validate(cfg Config) error {
	if cfg.Shards < 0 {
		return fmt.Errorf("fleet: negative shard count %d", cfg.Shards)
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = DefaultMix
	}
	for _, share := range mix {
		if _, ok := implementations[share.Impl]; !ok {
			return fmt.Errorf("fleet: unknown implementation %q in mix", share.Impl)
		}
		if share.Weight < 0 {
			return fmt.Errorf("fleet: negative weight for %q", share.Impl)
		}
	}
	if err := detector.ValidateNames(cfg.GFW.Detectors); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	if cfg.Regions != nil {
		if err := cfg.Regions.Validate(); err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
		for _, r := range cfg.Regions.Regions {
			if r.GFW != nil {
				if err := detector.ValidateNames(r.GFW.Detectors); err != nil {
					return fmt.Errorf("fleet: region %q: %w", r.Name, err)
				}
			}
		}
	}
	return nil
}

// build constructs the shard's servers, users, and their initial
// wake-ups from the global plan.
func (f *Fleet) build(plan runPlan) {
	cfg := f.cfg

	f.implNames = make([]string, len(cfg.Mix))
	for k, s := range cfg.Mix {
		f.implNames[k] = s.Impl
	}
	f.implUsers = make([]int64, len(cfg.Mix))
	f.implServers = make([]int64, len(cfg.Mix))
	f.implEver = make([]int64, len(cfg.Mix))

	f.servers = make([]serverRec, f.serverHi-f.serverLo)
	f.sargs = make([]srvArg, len(f.servers))
	for j := range f.servers {
		gj := f.serverLo + j
		// The implementation was drawn globally (one "fleet.mix" stream
		// over all servers), so the population composition is independent
		// of the shard count.
		implIdx := int(plan.impl[gj])
		im := implementations[cfg.Mix[implIdx].Impl]
		var spec sscrypto.Spec
		var srv *reaction.Server
		if im.proto == protoSS {
			var err error
			spec, err = sscrypto.Lookup(im.method)
			if err != nil {
				panic(err) // implementations table only names built-in methods
			}
			srv, err = reaction.NewServer(im.profile, spec, fmt.Sprintf("fleet-%d", gj))
			if err != nil {
				panic(err)
			}
		}
		ep := f.serverEndpoint()
		f.servers[j] = serverRec{
			host:      newServerHost(f, srv, im.proto, im.silent, cfg.UsersPerServer, cfg.Hours, cfg.PeakFlowsPerHour),
			ep:        ep,
			spec:      spec,
			wl:        uint8(im.wl),
			proto:     im.proto,
			implIdx:   int32(implIdx),
			activated: netsim.Epoch,
		}
		f.implServers[implIdx]++
		f.sargs[j] = srvArg{f: f, idx: int32(j)}
		f.epochs[ep] = epoch{at: netsim.Epoch, impl: int32(implIdx), srv: int32(j)}
		f.net.AddHost(ep, f.servers[j].host)
	}

	f.users = make([]user, f.userHi-f.userLo)
	f.uargs = make([]userArg, len(f.users))
	f.clients = make([]netsim.Endpoint, len(f.users))
	for i := range f.users {
		gi := f.userLo + i
		u := &f.users[i]
		// The user seed label carries the global index, so with one shard
		// the streams are exactly the historical ones.
		u.rng = uint64(seedfork.Fork(f.seed, "fleet.user", int64(gi)))
		u.server = int32(gi/cfg.UsersPerServer - f.serverLo)
		// Small personal jitter, not a uniform 24h shift: the population
		// shares a timezone, so the aggregate keeps its diurnal shape.
		u.phaseMin = int16(splitmix(&u.rng)%181) - 90
		// The BrowseShare draw always happens — keeping the per-user RNG
		// stream identical across mixes — then non-SS servers override the
		// workload with their protocol's first-packet shape.
		u.wl = uint8(trafficgen.CurlLoop)
		if u.f64() < cfg.BrowseShare {
			u.wl = uint8(trafficgen.BrowseAlexa)
		}
		srv := &f.servers[u.server]
		if srv.proto != protoSS {
			u.wl = srv.wl
		}
		f.implUsers[srv.implIdx]++
		f.uargs[i] = userArg{f: f, idx: int32(i)}
		f.clients[i] = netsim.Endpoint{
			IP:   fmt.Sprintf("100.%d.%d.%d", 64+gi/62500, (gi/250)%250, gi%250+1),
			Port: 40000,
		}
		// Stagger first wake-ups uniformly over one mean gap, so the
		// population is in Poisson steady state from the start. A
		// restored unit draws the stagger anyway (keeping this loop
		// identical) but re-arms its real pending wake-ups from the
		// snapshot instead.
		first := netsim.Epoch.Add(time.Duration(u.f64() * float64(f.meanGap)))
		if !f.restoring {
			f.wheel.Schedule(first, runUserWake, &f.uargs[i])
		}
	}
}
