package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"sslab/internal/netsim"
	"sslab/internal/region"
)

// runEngineReport drives an engine to its end and marshals the report.
func runEngineReport(t *testing.T, e *Engine) []byte {
	t.Helper()
	if err := e.RunTo(e.End()); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Report()
	if err != nil {
		t.Fatal(err)
	}
	return reportJSON(t, rep)
}

// TestEngineMatchesRun: holding a run open through the Engine API and
// driving it to the end in one step is Run, byte for byte.
func TestEngineMatchesRun(t *testing.T) {
	golden := reportJSON(t, mustRun(t, shardedCfg(21)))
	e, err := NewEngine(shardedCfg(21))
	if err != nil {
		t.Fatal(err)
	}
	if got := runEngineReport(t, e); !bytes.Equal(got, golden) {
		t.Fatal("Engine-driven run diverged from Run")
	}
}

// TestEngineStagedRunIdentity: advancing a run in many small RunTo
// steps (including repeated and backwards targets, which are no-ops)
// reports byte-identically to one straight shot.
func TestEngineStagedRunIdentity(t *testing.T) {
	golden := reportJSON(t, mustRun(t, smallCfg(22)))
	e, err := NewEngine(smallCfg(22))
	if err != nil {
		t.Fatal(err)
	}
	for h := 1; h <= 6; h++ {
		at := netsim.Epoch.Add(time.Duration(h) * time.Hour)
		if err := e.RunTo(at); err != nil {
			t.Fatal(err)
		}
		if err := e.RunTo(at.Add(-30 * time.Minute)); err != nil {
			t.Fatal(err) // backwards targets are no-ops
		}
	}
	rep, err := e.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, rep); !bytes.Equal(got, golden) {
		t.Fatal("staged run diverged from straight run")
	}
	// Report is cached: a second call returns the same object.
	again, err := e.Report()
	if err != nil {
		t.Fatal(err)
	}
	if again != rep {
		t.Fatal("Report must be cached after the first call")
	}
}

// resumedReport runs cfg to midpoint, snapshots, restores into a fresh
// engine, and finishes the run there.
func resumedReport(t *testing.T, cfg Config, opts ...Option) []byte {
	t.Helper()
	e, err := NewEngine(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	mid := netsim.Epoch.Add(time.Duration(cfg.Hours) * time.Hour / 2)
	if err := e.RunTo(mid); err != nil {
		t.Fatal(err)
	}
	data, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(data, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Now().Equal(mid) {
		t.Fatalf("restored engine at %v, want %v", r.Now(), mid)
	}
	return runEngineReport(t, r)
}

// TestSnapshotResumeByteIdentity pins the tentpole invariant: run to
// T, Snapshot, Restore, run to 2T must be byte-identical to an
// uninterrupted 2T run — at one shard and at several, with parallel
// workers on the restored engine.
func TestSnapshotResumeByteIdentity(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := smallCfg(31)
		cfg.Shards = shards
		golden := reportJSON(t, mustRun(t, cfg))
		if got := resumedReport(t, cfg, WithWorkers(2)); !bytes.Equal(got, golden) {
			t.Fatalf("shards=%d: resumed run diverged from uninterrupted run:\n%s\nvs\n%s",
				shards, got, golden)
		}
	}
}

// TestSnapshotResumeRegional: the resume invariant holds with a
// multi-region topology and a mid-run schedule whose events straddle
// the snapshot point.
func TestSnapshotResumeRegional(t *testing.T) {
	cfg := smallCfg(33)
	cfg.Shards = 2
	cfg.Regions = &region.Topology{Regions: []region.Region{
		{Name: "coastal", Weight: 2, Schedule: region.Schedule{
			{AtHours: 1, Kind: region.KindSensitivity, Value: 0.8},
			{AtHours: 4, Kind: region.KindSensitivity, Value: 0.1},
		}},
		{Name: "inland", Weight: 1, Schedule: region.Schedule{
			{AtHours: 2, Kind: region.KindPause},
			{AtHours: 5, Kind: region.KindResume},
		}},
	}}
	golden := reportJSON(t, mustRun(t, cfg))
	if got := resumedReport(t, cfg); !bytes.Equal(got, golden) {
		t.Fatal("regional resumed run diverged from uninterrupted run")
	}
}

// TestSnapshotRepeatedResume: snapshotting the *restored* engine and
// resuming again (a chain of three engines) still lands on the golden.
func TestSnapshotRepeatedResume(t *testing.T) {
	cfg := smallCfg(35)
	cfg.Shards = 3
	golden := reportJSON(t, mustRun(t, cfg))

	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for h := 2; h <= 4; h += 2 {
		if err := e.RunTo(netsim.Epoch.Add(time.Duration(h) * time.Hour)); err != nil {
			t.Fatal(err)
		}
		data, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if e, err = Restore(data); err != nil {
			t.Fatal(err)
		}
	}
	if got := runEngineReport(t, e); !bytes.Equal(got, golden) {
		t.Fatal("twice-resumed run diverged from uninterrupted run")
	}
}

// TestSnapshotRefusals: the two documented refusals, plus garbage input
// to Restore.
func TestSnapshotRefusals(t *testing.T) {
	e, err := NewEngine(smallCfg(37))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTo(e.End()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Report(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(); err == nil {
		t.Fatal("Snapshot after Report must fail (reduction consumed pending state)")
	}

	imp := smallCfg(37)
	imp.Impair = &netsim.LinkProfile{Loss: 0.01}
	ei, err := NewEngine(imp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ei.Snapshot(); err == nil {
		t.Fatal("Snapshot of an impaired run must fail")
	}

	if _, err := Restore(nil); err == nil {
		t.Fatal("Restore(nil) must fail")
	}
	if _, err := Restore([]byte("not a snapshot at all")); err == nil {
		t.Fatal("Restore of garbage must fail")
	}
	good, err := func() ([]byte, error) {
		e2, err := NewEngine(smallCfg(37))
		if err != nil {
			return nil, err
		}
		return e2.Snapshot()
	}()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[len(snapMagic)+3] = 99 // future version
	if _, err := Restore(bad); err == nil {
		t.Fatal("Restore must reject unknown snapshot versions")
	}
}

// TestMergeUnmergeableTyped: satellite regression — Merge on a Report
// restored from JSON fails with the typed, documented sentinel,
// matchable via errors.Is from both sides of the merge.
func TestMergeUnmergeableTyped(t *testing.T) {
	rep := mustRun(t, smallCfg(39))
	var restored Report
	if err := json.Unmarshal(reportJSON(t, rep), &restored); err != nil {
		t.Fatal(err)
	}
	if err := restored.Merge(rep); !errors.Is(err, ErrUnmergeableReport) {
		t.Fatalf("restored.Merge(live) = %v, want ErrUnmergeableReport", err)
	}
	if err := rep.Merge(&restored); !errors.Is(err, ErrUnmergeableReport) {
		t.Fatalf("live.Merge(restored) = %v, want ErrUnmergeableReport", err)
	}
}
