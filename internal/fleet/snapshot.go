package fleet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"sslab/internal/bloom"
	"sslab/internal/gfw"
	"sslab/internal/netsim"
	"sslab/internal/replay"
	"sslab/internal/stats"
	"sslab/internal/trafficgen"
)

// Snapshot format: the magic string, a big-endian uint32 version, then
// a gob-encoded engineSnap. The version bumps whenever the DTO layout
// changes incompatibly; Restore rejects unknown versions rather than
// guessing. Snapshot *bytes* are not canonical (gob serializes map-
// backed sketch state in arbitrary order) — the pinned invariant is
// that a restored engine's continued run reports byte-identically to
// an uninterrupted one, which the snapshot round-trip tests and the CI
// resume smoke enforce.
const (
	snapMagic   = "SSLABSNAP"
	snapVersion = 1
)

// engineSnap is the full serialized engine: the science config (the
// plan is re-derived from it) and each unit's state, in unit order.
type engineSnap struct {
	Config Config
	Now    time.Time
	Units  []unitSnap
}

// unitSnap is one unit's complete mutable state at a quiescent RunTo
// boundary. Structure (hosts, plan, metrics bindings) is rebuilt from
// Config; only state that evolves during a run is stored.
type unitSnap struct {
	// Packed per-user state, parallel arrays indexed by local user.
	URng         []uint64
	UServer      []int32
	UPhase       []int16
	UWl          []uint8
	UBlocked     []bool
	UEverBlocked []bool

	Servers      []serverSnap
	Epochs       []epochSnap
	NextServerIP int

	// Aggregates.
	Flows        int64
	Wakeups      int64
	BlockedNow   int64
	EverBlocked  int64
	Replacements int64
	LastProbes   int
	BlockedCurve []int64
	ProbeLoad    []int64
	ImplEver     []int64

	// Sketches (exported-field types; Quantile's cached logGamma is
	// recomputed lazily after decoding).
	FlowsTS stats.TimeSeries
	LatQ    stats.Quantile
	LifeQ   stats.Quantile
	GapQ    stats.Quantile

	PolicyNext int

	TG  trafficgen.RNGState
	GFW gfw.State
	Net netsim.NetworkState

	// Pending events, in scheduling-sequence order (heap and wheel
	// sequences are independent; see netsim's snapshot surface).
	HeapEvents  []eventSnap
	WheelEvents []eventSnap
}

// serverSnap is one server's mutable state: its current endpoint epoch
// and the replay memory of its long-lived host.
type serverSnap struct {
	Ep        netsim.Endpoint
	Activated time.Time
	FirstFail time.Time
	Replacing bool
	Seen      bloom.FilterState
	// Filter is the reaction engine's replay-defense state (Shadowsocks
	// servers only; nil otherwise).
	Filter *replay.State
}

// epochSnap is one endpoint activation record.
type epochSnap struct {
	EP   netsim.Endpoint
	At   time.Time
	Impl int32
	Srv  int32
}

// eventSnap is one pending scheduled event in serializable form. Kind
// selects the trampoline; Idx addresses the unit's pre-allocated arg
// (user or server); Task carries a censor task's payload.
type eventSnap struct {
	At   time.Time
	Kind string // "wake", "replace", "sample", "policy", "gfw"
	Idx  int32
	Task *gfw.TaskState
}

// Snapshot serializes the engine at its current quiescent boundary —
// after a RunTo returned and before Report has been called. The
// restored engine continues byte-identically: run-to-T, Snapshot,
// Restore, run-to-2T reports exactly what an uninterrupted run-to-2T
// does, at any shard count.
//
// Two documented refusals: impaired runs (per-link PRNG positions and
// in-flight delayed deliveries are not serializable) and engines that
// already reported (Report's reduction consumes pending block
// latencies, so the state is no longer the mid-run state).
func (e *Engine) Snapshot() ([]byte, error) {
	if e.rep != nil {
		return nil, fmt.Errorf("fleet: cannot snapshot after Report — the reduction already consumed pending state")
	}
	if e.cfg.Impair != nil {
		return nil, fmt.Errorf("fleet: cannot snapshot an impaired run (per-link PRNG state is not serializable)")
	}
	snap := engineSnap{Config: e.cfg, Now: e.now, Units: make([]unitSnap, len(e.units))}
	if err := e.each(func(i int) error {
		u, err := e.units[i].capture()
		if err != nil {
			return err
		}
		snap.Units[i] = u
		return nil
	}); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteString(snapMagic)
	var ver [4]byte
	binary.BigEndian.PutUint32(ver[:], snapVersion)
	buf.Write(ver[:])
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("fleet: encoding snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore rebuilds an engine from Snapshot bytes. Options configure
// execution of the restored engine (they need not match the original
// run's — execution options are report-invariant).
func Restore(data []byte, opts ...Option) (*Engine, error) {
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("fleet: not a fleet snapshot (bad magic)")
	}
	ver := binary.BigEndian.Uint32(data[len(snapMagic) : len(snapMagic)+4])
	if ver != snapVersion {
		return nil, fmt.Errorf("fleet: snapshot version %d not supported (want %d)", ver, snapVersion)
	}
	var snap engineSnap
	if err := gob.NewDecoder(bytes.NewReader(data[len(snapMagic)+4:])).Decode(&snap); err != nil {
		return nil, fmt.Errorf("fleet: decoding snapshot: %w", err)
	}
	return newEngine(snap.Config, &snap, opts)
}

// capture serializes one unit. The unit must be quiescent (its
// simulator stopped at a RunUntil boundary), which RunTo guarantees.
func (f *Fleet) capture() (unitSnap, error) {
	n := len(f.users)
	s := unitSnap{
		URng:         make([]uint64, n),
		UServer:      make([]int32, n),
		UPhase:       make([]int16, n),
		UWl:          make([]uint8, n),
		UBlocked:     make([]bool, n),
		UEverBlocked: make([]bool, n),
		NextServerIP: f.nextServerIP,
		Flows:        f.flows,
		Wakeups:      f.wakeups,
		BlockedNow:   f.blockedNow,
		EverBlocked:  f.everBlocked,
		Replacements: f.replacements,
		LastProbes:   f.lastProbes,
		BlockedCurve: append([]int64(nil), f.blockedCurve...),
		ProbeLoad:    append([]int64(nil), f.probeLoad...),
		ImplEver:     append([]int64(nil), f.implEver...),
		FlowsTS:      *f.flowsTS,
		LatQ:         *f.latencies,
		LifeQ:        *f.lifetimes,
		GapQ:         *f.gapQ,
		PolicyNext:   f.policyNext,
		TG:           f.tg.CaptureRNG(),
		GFW:          f.gfw.CaptureState(),
		Net:          f.net.CaptureState(),
	}
	for i := range f.users {
		u := &f.users[i]
		s.URng[i] = u.rng
		s.UServer[i] = u.server
		s.UPhase[i] = u.phaseMin
		s.UWl[i] = u.wl
		s.UBlocked[i] = u.blocked
		s.UEverBlocked[i] = u.everBlocked
	}
	s.Servers = make([]serverSnap, len(f.servers))
	for j := range f.servers {
		srv := &f.servers[j]
		ss := serverSnap{
			Ep:        srv.ep,
			Activated: srv.activated,
			FirstFail: srv.firstFail,
			Replacing: srv.replacing,
			Seen:      srv.host.seen.State(),
		}
		if srv.host.srv != nil {
			st, err := srv.host.srv.FilterState()
			if err != nil {
				return unitSnap{}, fmt.Errorf("server %d: %w", f.serverLo+j, err)
			}
			ss.Filter = &st
		}
		s.Servers[j] = ss
	}
	s.Epochs = make([]epochSnap, 0, len(f.epochs))
	for ep, e := range f.epochs {
		s.Epochs = append(s.Epochs, epochSnap{EP: ep, At: e.at, Impl: e.impl, Srv: e.srv})
	}
	sort.Slice(s.Epochs, func(i, j int) bool {
		a, b := s.Epochs[i].EP, s.Epochs[j].EP
		if a.IP != b.IP {
			return a.IP < b.IP
		}
		return a.Port < b.Port
	})

	for _, ev := range f.sim.PendingEvents() {
		if netsim.IsWheelAnchor(ev.Arg) {
			continue // the restored wheel re-arms its own anchors
		}
		es := eventSnap{At: ev.At}
		switch a := ev.Arg.(type) {
		case *userArg:
			es.Kind, es.Idx = "wake", a.idx // a wake poured to the heap within the current tick
		case *srvArg:
			es.Kind, es.Idx = "replace", a.idx
		case *Fleet:
			es.Kind = "sample"
		case *policyArg:
			es.Kind = "policy"
		default:
			ts, ok := gfw.EncodeTask(ev.Arg)
			if !ok {
				return unitSnap{}, fmt.Errorf("cannot snapshot pending event with arg %T", ev.Arg)
			}
			es.Kind, es.Task = "gfw", &ts
		}
		s.HeapEvents = append(s.HeapEvents, es)
	}
	for _, we := range f.wheel.PendingEntries() {
		a, ok := we.Arg.(*userArg)
		if !ok {
			return unitSnap{}, fmt.Errorf("cannot snapshot pending wheel entry with arg %T", we.Arg)
		}
		s.WheelEvents = append(s.WheelEvents, eventSnap{At: we.At, Kind: "wake", Idx: a.idx})
	}
	return s, nil
}

// restore overwrites a freshly built (restoring=true) unit with its
// snapshot state and re-arms its pending events. The sequence matters:
// the simulator's clock is advanced to the snapshot time first (so the
// wheel parks entries against the right tick origin and nothing is
// clamped into the past), state is overwritten second, and events are
// re-armed last — heap events in original heap-sequence order, then
// wheel entries in original wheel-sequence order, which reproduces the
// captured run's dispatch order exactly.
func (f *Fleet) restore(s *unitSnap, now time.Time) error {
	if len(s.URng) != len(f.users) {
		return fmt.Errorf("snapshot has %d users, plan builds %d", len(s.URng), len(f.users))
	}
	if len(s.Servers) != len(f.servers) {
		return fmt.Errorf("snapshot has %d servers, plan builds %d", len(s.Servers), len(f.servers))
	}
	if len(s.ImplEver) != len(f.implEver) {
		return fmt.Errorf("snapshot has %d mix rows, plan builds %d", len(s.ImplEver), len(f.implEver))
	}

	// 1. Advance the empty simulator to the snapshot time.
	f.sim.RunUntil(now)

	// 2. Overwrite mutable state.
	for i := range f.users {
		f.users[i] = user{
			rng:         s.URng[i],
			server:      s.UServer[i],
			phaseMin:    s.UPhase[i],
			wl:          s.UWl[i],
			blocked:     s.UBlocked[i],
			everBlocked: s.UEverBlocked[i],
		}
	}
	for j := range f.servers {
		srv := &f.servers[j]
		ss := &s.Servers[j]
		srv.ep = ss.Ep
		srv.activated = ss.Activated
		srv.firstFail = ss.FirstFail
		srv.replacing = ss.Replacing
		srv.host.seen = bloom.RestoreFilter(ss.Seen)
		if srv.host.srv != nil {
			if ss.Filter == nil {
				return fmt.Errorf("server %d: snapshot lacks replay filter state", f.serverLo+j)
			}
			if err := srv.host.srv.RestoreFilterState(*ss.Filter); err != nil {
				return fmt.Errorf("server %d: %w", f.serverLo+j, err)
			}
		}
	}
	f.epochs = make(map[netsim.Endpoint]epoch, len(s.Epochs))
	for _, es := range s.Epochs {
		if es.Srv < 0 || int(es.Srv) >= len(f.servers) {
			return fmt.Errorf("epoch %v references server %d of %d", es.EP, es.Srv, len(f.servers))
		}
		f.epochs[es.EP] = epoch{at: es.At, impl: es.Impl, srv: es.Srv}
		// Re-bind every historical endpoint: old endpoints outlive a
		// replacement and still serve the censor's probes.
		f.net.AddHost(es.EP, f.servers[es.Srv].host)
	}
	f.nextServerIP = s.NextServerIP
	f.flows = s.Flows
	f.wakeups = s.Wakeups
	f.blockedNow = s.BlockedNow
	f.everBlocked = s.EverBlocked
	f.replacements = s.Replacements
	f.lastProbes = s.LastProbes
	f.blockedCurve = append([]int64(nil), s.BlockedCurve...)
	f.probeLoad = append([]int64(nil), s.ProbeLoad...)
	copy(f.implEver, s.ImplEver)
	ts, lat, life, gap := s.FlowsTS, s.LatQ, s.LifeQ, s.GapQ
	f.flowsTS, f.latencies, f.lifetimes, f.gapQ = &ts, &lat, &life, &gap
	f.policyNext = s.PolicyNext
	f.tg.RestoreRNG(s.TG)
	if err := f.gfw.RestoreState(s.GFW); err != nil {
		return err
	}
	f.net.RestoreState(s.Net)
	f.mBlockedUsers.Set(f.blockedNow)

	// 3. Re-arm pending events: heap first, then wheel, each in its
	// original sequence order.
	for _, ev := range s.HeapEvents {
		switch ev.Kind {
		case "wake":
			if ev.Idx < 0 || int(ev.Idx) >= len(f.uargs) {
				return fmt.Errorf("pending wake references user %d of %d", ev.Idx, len(f.uargs))
			}
			f.sim.AtCall(ev.At, runUserWake, &f.uargs[ev.Idx])
		case "replace":
			if ev.Idx < 0 || int(ev.Idx) >= len(f.sargs) {
				return fmt.Errorf("pending replace references server %d of %d", ev.Idx, len(f.sargs))
			}
			f.sim.AtCall(ev.At, runReplace, &f.sargs[ev.Idx])
		case "sample":
			f.sim.AtCall(ev.At, runSample, f)
		case "policy":
			f.sim.AtCall(ev.At, runPolicy, &f.parg)
		case "gfw":
			if ev.Task == nil {
				return fmt.Errorf("pending censor task without payload")
			}
			if err := f.gfw.ScheduleTask(ev.At, *ev.Task); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown pending event kind %q", ev.Kind)
		}
	}
	for _, we := range s.WheelEvents {
		if we.Kind != "wake" {
			return fmt.Errorf("unknown pending wheel entry kind %q", we.Kind)
		}
		if we.Idx < 0 || int(we.Idx) >= len(f.uargs) {
			return fmt.Errorf("pending wake references user %d of %d", we.Idx, len(f.uargs))
		}
		f.wheel.Schedule(we.At, runUserWake, &f.uargs[we.Idx])
	}
	return nil
}
