package fleet

import (
	"testing"

	"sslab/internal/gfw"
)

// TestProtocolMixOutcomes runs a mixed-protocol population under the
// full detector chain and checks the arms-race structure: probeable
// deployments (plain OpenVPN, obfs2) lose servers, probe-resistant ones
// (tls-auth OpenVPN, obfs4) never produce a confirmable response and
// survive, and the per-implementation accounting is internally
// consistent.
func TestProtocolMixOutcomes(t *testing.T) {
	rep, err := Run(Config{
		Seed:           11,
		Users:          3000,
		UsersPerServer: 50,
		Hours:          6,
		ActivityFloor:  1,
		Mix: []ImplShare{
			{Impl: "sspython", Weight: 0.2},
			{Impl: "openvpn", Weight: 0.2},
			{Impl: "openvpn-auth", Weight: 0.15},
			{Impl: "obfs2", Weight: 0.15},
			{Impl: "obfs4", Weight: 0.15},
			{Impl: "web", Weight: 0.15},
		},
		GFW: gfwChainConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}

	byName := map[string]ImplStats{}
	var users, servers, ever, blocks int64
	for _, im := range rep.PerImpl {
		byName[im.Name] = im
		users += im.Users
		servers += im.Servers
		ever += im.EverBlockedUsers
		blocks += im.Blocks
	}
	if users != int64(rep.Users) {
		t.Errorf("per-impl users sum %d != %d", users, rep.Users)
	}
	if servers != int64(rep.Servers) {
		t.Errorf("per-impl servers sum %d != %d", servers, rep.Servers)
	}
	if ever != rep.EverBlockedUsers {
		t.Errorf("per-impl ever-blocked sum %d != %d", ever, rep.EverBlockedUsers)
	}
	if blocks != int64(rep.Blocks) {
		t.Errorf("per-impl blocks sum %d != %d", blocks, rep.Blocks)
	}

	// Probe-resistant deployments must never be confirmed: tls-auth and
	// obfs4 servers time every probe out.
	for _, name := range []string{"openvpn-auth", "obfs4"} {
		if b := byName[name].Blocks; b != 0 {
			t.Errorf("%s: %d blocks, want 0 (probe-silent)", name, b)
		}
	}
	// Probeable deployments must actually fall to the chain at this scale.
	for _, name := range []string{"openvpn", "obfs2"} {
		if byName[name].Blocks == 0 {
			t.Errorf("%s: no blocks; the %v chain never confirmed a probeable server", name, rep.Config.GFW.Detectors)
		}
	}

	// Stage attribution must be populated and sum to the recorded total.
	sum := 0
	for _, sc := range rep.StageRecordings {
		sum += sc.Recorded
	}
	if sum != rep.PayloadsRecorded {
		t.Errorf("stage recordings sum %d != PayloadsRecorded %d", sum, rep.PayloadsRecorded)
	}
}

// gfwChainConfig returns the censor config for the full three-stage
// passive chain used by the protocol-mix tests.
func gfwChainConfig() (c gfw.Config) {
	c.Detectors = []string{"shadowsocks", "openvpn", "fullyencrypted"}
	return c
}

// TestRunRejectsBadDetectors: a typo in the detector chain must surface
// as an error from Run, not a panic from the censor constructor.
func TestRunRejectsBadDetectors(t *testing.T) {
	cfg := Config{Seed: 1, Users: 10, Hours: 1}
	cfg.GFW.Detectors = []string{"shadowsock"}
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted an unknown detector name")
	}
}
