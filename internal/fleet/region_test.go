package fleet

import (
	"bytes"
	"testing"

	"sslab/internal/gfw"
	"sslab/internal/region"
)

// strippedJSON marshals a report with its echoed Config zeroed, so
// runs whose configs legitimately differ (Regions set vs nil) can be
// compared on outcome bytes alone.
func strippedJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	rep.Config = Config{}
	return reportJSON(t, rep)
}

// TestRegionIdentityProperty pins the layering satellite: an explicit
// single-region topology with an empty schedule is the pre-region
// engine, byte for byte (Config excluded — it records the knob), for
// several seeds and shard counts, including a topology that restates
// the fleet's censor config as a regional override.
func TestRegionIdentityProperty(t *testing.T) {
	for _, seed := range []int64{3, 7, 11} {
		for _, shards := range []int{0, 4} {
			cfg := smallCfg(seed)
			cfg.Shards = shards
			base := strippedJSON(t, mustRun(t, cfg))

			one := cfg
			one.Regions = &region.Topology{Regions: []region.Region{{Name: "all", Weight: 1}}}
			if got := strippedJSON(t, mustRun(t, one)); !bytes.Equal(got, base) {
				t.Fatalf("seed=%d shards=%d: single-region topology changed report bytes", seed, shards)
			}

			named := cfg
			named.Regions = &region.Topology{Regions: []region.Region{{Name: "everything", Weight: 42.5}}}
			if got := strippedJSON(t, mustRun(t, named)); !bytes.Equal(got, base) {
				t.Fatalf("seed=%d shards=%d: region name/weight leaked into the engine", seed, shards)
			}

			override := cfg
			override.Regions = &region.Topology{Regions: []region.Region{
				{Name: "all", Weight: 1, GFW: &gfw.Config{}},
			}}
			if got := strippedJSON(t, mustRun(t, override)); !bytes.Equal(got, base) {
				t.Fatalf("seed=%d shards=%d: zero-value regional GFW override diverged from fleet default", seed, shards)
			}
		}
	}
}

// blockingCfg is TestFleetBlockingDynamics' recipe: an all-undefended
// population, aggressive recording, enough hours that the block →
// outage → replacement chain fires inside a unit test.
func blockingCfg(seed int64) Config {
	cfg := smallCfg(seed)
	cfg.Users = 800
	cfg.UsersPerServer = 40
	cfg.Hours = 12
	cfg.PeakFlowsPerHour = 6
	cfg.Mix = []ImplShare{{Impl: "sspython", Weight: 1}}
	cfg.GFW.Sensitivity = 1
	cfg.GFW.ReplayBase = 0.3
	return cfg
}

// fourRegions is a sensitivity gradient over otherwise-identical
// censors (regional overrides replace the whole censor config, so each
// restates the aggressive recording base).
func fourRegions() *region.Topology {
	return &region.Topology{Regions: []region.Region{
		{Name: "north", Weight: 1, GFW: &gfw.Config{Sensitivity: 0.05, ReplayBase: 0.3}},
		{Name: "east", Weight: 1, GFW: &gfw.Config{Sensitivity: 0.4, ReplayBase: 0.3}},
		{Name: "south", Weight: 1, GFW: &gfw.Config{Sensitivity: 0.7, ReplayBase: 0.3}},
		{Name: "west", Weight: 1, GFW: &gfw.Config{Sensitivity: 1, ReplayBase: 0.3}},
	}}
}

// TestRegionShape: structural invariants of a genuinely regional run —
// PerRegion rows in topology order covering the whole population, and
// a sensitivity gradient showing up as ordered blocking pressure.
func TestRegionShape(t *testing.T) {
	cfg := blockingCfg(17)
	cfg.Regions = fourRegions()
	rep := mustRun(t, cfg)

	if len(rep.PerRegion) != 4 {
		t.Fatalf("PerRegion has %d rows, want 4", len(rep.PerRegion))
	}
	users, servers := 0, 0
	var flows, wakeups int64
	probes, blocks := 0, 0
	for i, rg := range rep.PerRegion {
		if rg.Name != cfg.Regions.Regions[i].Name {
			t.Fatalf("PerRegion[%d] = %q, want %q", i, rg.Name, cfg.Regions.Regions[i].Name)
		}
		if rg.Users <= 0 || rg.Servers <= 0 {
			t.Fatalf("region %s has %d users / %d servers", rg.Name, rg.Users, rg.Servers)
		}
		users += rg.Users
		servers += rg.Servers
		flows += rg.Flows
		wakeups += rg.Wakeups
		probes += rg.ProbesSent
		blocks += rg.Blocks
	}
	if users != rep.Users || servers != rep.Servers {
		t.Fatalf("regions cover %d users / %d servers, report has %d / %d",
			users, servers, rep.Users, rep.Servers)
	}
	if flows != rep.Flows || wakeups != rep.Wakeups || probes != rep.ProbesSent || blocks != rep.Blocks {
		t.Fatalf("regional totals (flows %d wakeups %d probes %d blocks %d) != global (%d %d %d %d)",
			flows, wakeups, probes, blocks, rep.Flows, rep.Wakeups, rep.ProbesSent, rep.Blocks)
	}
	// The gradient: the gentlest region must block a smaller share of
	// its users than the harshest (individual neighbors may tie at small
	// populations, but the extremes must order).
	lo, hi := rep.PerRegion[0], rep.PerRegion[3]
	if lo.BlockedUserFraction >= hi.BlockedUserFraction {
		t.Fatalf("sensitivity 0.05 region blocked %.3f of users, 1.0 region %.3f — gradient inverted",
			lo.BlockedUserFraction, hi.BlockedUserFraction)
	}
	if hi.Blocks == 0 {
		t.Fatal("harshest region never blocked; gradient test is vacuous")
	}
}

// TestRegionDeterminism: regional runs stay deterministic and worker-
// invariant, and single-region reports carry no PerRegion rows.
func TestRegionDeterminism(t *testing.T) {
	cfg := smallCfg(19)
	cfg.Shards = 3
	cfg.Regions = fourRegions()
	golden := reportJSON(t, mustRun(t, cfg))
	for _, workers := range []int{1, 4} {
		rep, err := Run(cfg, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if got := reportJSON(t, rep); !bytes.Equal(got, golden) {
			t.Fatalf("workers=%d: regional report diverged", workers)
		}
	}

	if rep := mustRun(t, smallCfg(19)); rep.PerRegion != nil {
		t.Fatal("single-region report must not carry PerRegion rows")
	}
}

// TestRegionSchedulePolicy: schedule events actually move the censor.
// A region whose schedule pauses probing at t=0 forever must never
// probe; one that steps sensitivity to 0 at t=0 must never block.
func TestRegionSchedulePolicy(t *testing.T) {
	cfg := blockingCfg(23)
	cfg.Regions = &region.Topology{Regions: []region.Region{
		{Name: "muzzled", Weight: 1, GFW: &gfw.Config{Sensitivity: 1, ReplayBase: 0.3},
			Schedule: region.Schedule{{AtHours: 0, Kind: region.KindPause}}},
		{Name: "toothless", Weight: 1, GFW: &gfw.Config{Sensitivity: 1, ReplayBase: 0.3},
			Schedule: region.Schedule{{AtHours: 0, Kind: region.KindSensitivity, Value: 0}}},
		{Name: "free-fire", Weight: 1, GFW: &gfw.Config{Sensitivity: 1, ReplayBase: 0.3}},
	}}
	rep := mustRun(t, cfg)
	byName := map[string]RegionStats{}
	for _, rg := range rep.PerRegion {
		byName[rg.Name] = rg
	}
	if got := byName["muzzled"]; got.ProbesSent != 0 || got.Blocks != 0 {
		t.Fatalf("paused region probed %d / blocked %d", got.ProbesSent, got.Blocks)
	}
	if got := byName["toothless"]; got.Blocks != 0 {
		t.Fatalf("zero-sensitivity region blocked %d", got.Blocks)
	}
	if byName["toothless"].ProbesSent == 0 {
		t.Fatal("zero-sensitivity region must still probe")
	}
	if got := byName["free-fire"]; got.Blocks == 0 {
		t.Fatal("sensitivity-1 region never blocked; policy test is vacuous")
	}
}

// TestRegionErrors: topology validation is wired through Run.
func TestRegionErrors(t *testing.T) {
	cfg := smallCfg(29)
	cfg.Regions = &region.Topology{}
	if _, err := Run(cfg); err == nil {
		t.Fatal("empty topology must be rejected")
	}

	cfg = smallCfg(29)
	cfg.Regions = &region.Topology{Regions: []region.Region{
		{Name: "whale", Weight: 1e9},
		{Name: "plankton", Weight: 1e-9}, // rounds to zero of 20 servers
	}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("a region with no servers must be rejected")
	}

	cfg = smallCfg(29)
	cfg.Regions = &region.Topology{Regions: []region.Region{
		{Name: "bad", Weight: 1, GFW: &gfw.Config{Detectors: []string{"no-such-detector"}}},
	}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown regional detector must be rejected")
	}
}
