package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"sslab/internal/netsim"
)

// Engine is a fleet run held open: every unit — a (region, shard) cell
// with its own simulator, network, censor, timing wheel and RNG
// streams — stays resident between RunTo calls, so a run can be
// advanced in stages, snapshotted at a quiescent boundary, and resumed
// later (Snapshot / Restore). Run wraps the whole lifecycle for
// callers that just want a Report.
//
// The execution contract is the same as Run's: the unit plan is fixed
// by Config, workers only trade wall-clock time for cores, and every
// Report byte is a function of Config alone.
type Engine struct {
	cfg   Config // post-defaults
	o     runOptions
	plan  runPlan
	units []*Fleet
	now   time.Time
	end   time.Time
	rep   *Report
}

// NewEngine validates cfg, fixes the unit plan, and builds every unit
// at virtual time zero. Options configure execution only.
func NewEngine(cfg Config, opts ...Option) (*Engine, error) {
	return newEngine(cfg, nil, opts)
}

// newEngine is the shared construction path: snap == nil builds a
// fresh engine; otherwise each unit is built structurally and then
// overwritten with its snapshot state.
func newEngine(cfg Config, snap *engineSnap, opts []Option) (*Engine, error) {
	var o runOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	if err := validate(cfg); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	plan, err := planRun(cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:   cfg,
		o:     o,
		plan:  plan,
		units: make([]*Fleet, len(plan.units)),
		now:   netsim.Epoch,
		end:   netsim.Epoch.Add(time.Duration(cfg.Hours) * time.Hour),
	}
	if snap != nil && len(snap.Units) != len(plan.units) {
		return nil, fmt.Errorf("fleet: snapshot has %d units, config plans %d", len(snap.Units), len(plan.units))
	}
	err = e.each(func(i int) error {
		e.units[i] = buildUnit(cfg, plan, plan.units[i], snap != nil)
		if snap != nil {
			if err := e.units[i].restore(&snap.Units[i], snap.Now); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if snap != nil {
		e.now = snap.Now
	}
	return e, nil
}

// each runs fn for every unit index on the engine's worker pool,
// converting panics into errors; the lowest-indexed failure wins, so
// the reported error never depends on which worker lost the race.
func (e *Engine) each(fn func(i int) error) error {
	call := func(i int) (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("panic: %v", p)
			}
		}()
		return fn(i)
	}
	n := len(e.units)
	workers := e.o.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = call(i)
		}
	} else {
		queue := make(chan int, n)
		for i := 0; i < n; i++ {
			queue <- i
		}
		close(queue)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range queue {
					errs[i] = call(i)
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("fleet: unit %d/%d (region %q shard %d): %w",
				i, n, e.plan.regions[e.plan.units[i].region].name, e.plan.units[i].shard, err)
		}
	}
	return nil
}

// Now returns the engine's virtual time (the last RunTo target, or the
// restored snapshot's time).
func (e *Engine) Now() time.Time { return e.now }

// End returns the configured end of the run.
func (e *Engine) End() time.Time { return e.end }

// RunTo advances every unit to virtual time t (a no-op for units
// already there). Times beyond End are legal — user wake-ups and
// sampling stop at End on their own — and earlier times are a no-op:
// virtual time never runs backwards.
func (e *Engine) RunTo(t time.Time) error {
	if t.Before(e.now) {
		return nil
	}
	if err := e.each(func(i int) error {
		e.units[i].sim.RunUntil(t)
		return nil
	}); err != nil {
		return err
	}
	e.now = t
	return nil
}

// Report reduces the run to its Report: per-unit reports merge within
// each region (in unit order), regional reports merge globally (in
// region order), and — for topologies with two or more regions — the
// per-region breakdown is attached as PerRegion rows. The reduction
// observes each unit's pending block latencies exactly once, so the
// Report is computed on first call and cached; a snapshot must be
// taken before the first Report call.
func (e *Engine) Report() (*Report, error) {
	if e.rep != nil {
		return e.rep, nil
	}
	reps := make([]*Report, len(e.units))
	if err := e.each(func(i int) error {
		reps[i] = e.units[i].report()
		return nil
	}); err != nil {
		return nil, err
	}

	// Merge within each region, in unit order. Merging is exact integer
	// addition on sketches and counters, so this grouping reproduces the
	// historical flat sequential merge bit-for-bit.
	regional := make([]*Report, len(e.plan.regions))
	for i, u := range e.plan.units {
		if regional[u.region] == nil {
			regional[u.region] = reps[i]
			continue
		}
		if err := regional[u.region].Merge(reps[i]); err != nil {
			return nil, fmt.Errorf("fleet: merging unit %d into region %q: %w", i, e.plan.regions[u.region].name, err)
		}
	}

	// The per-region breakdown is computed before the global merge
	// mutates regional[0]; it only exists for genuinely regional runs,
	// so single-region reports stay byte-identical to pre-region ones.
	var perRegion []RegionStats
	if len(e.plan.regions) > 1 {
		perRegion = make([]RegionStats, len(regional))
		for r, rep := range regional {
			perRegion[r] = regionStats(e.plan.regions[r].name, rep)
		}
	}

	rep := regional[0]
	for r := 1; r < len(regional); r++ {
		if err := rep.Merge(regional[r]); err != nil {
			return nil, fmt.Errorf("fleet: merging region %q: %w", e.plan.regions[r].name, err)
		}
	}
	rep.PerRegion = perRegion

	if e.o.metrics != nil {
		for i := range e.units {
			if err := e.o.metrics.Absorb(e.units[i].sim.Metrics.Snapshot()); err != nil {
				return nil, fmt.Errorf("fleet: unit %d/%d: %w", i, len(e.units), err)
			}
		}
	}
	e.rep = rep
	return rep, nil
}
