package fleet

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"sslab/internal/metrics"
)

// shardedCfg is smallCfg with a shard count that does not divide the
// 20-server population (20 = 7+... → ranges 3,3,3,3,3,3,2), so the
// balanced-partition remainder path is always exercised.
func shardedCfg(seed int64) Config {
	cfg := smallCfg(seed)
	cfg.Shards = 7
	return cfg
}

func mustJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetWorkerByteIdentity pins the tentpole invariant: the worker
// count executing a fixed shard plan must never change a single report
// byte. Workers ∈ {1, 2, 4, 7} over a 7-shard plan covers under-,
// non-divisible- and fully-parallel pools.
func TestFleetWorkerByteIdentity(t *testing.T) {
	golden := mustJSON(t, mustRun(t, shardedCfg(11)))
	for _, workers := range []int{1, 2, 4, 7} {
		rep, err := Run(shardedCfg(11), WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := mustJSON(t, rep); !bytes.Equal(got, golden) {
			t.Fatalf("workers=%d report diverged from the single-threaded golden:\n%s\nvs\n%s",
				workers, got, golden)
		}
	}
}

// TestFleetShardsDefault: Shards = 0 must mean 1 shard, byte-for-byte,
// and oversized shard counts clamp to the server count.
func TestFleetShardsDefault(t *testing.T) {
	base := mustJSON(t, mustRun(t, smallCfg(3)))

	one := smallCfg(3)
	one.Shards = 1
	// withDefaults echoes Shards=1 into both reports' Config, so the
	// comparison is byte-exact with no fixups.
	if got := mustJSON(t, mustRun(t, one)); !bytes.Equal(got, base) {
		t.Fatalf("Shards=1 diverged from Shards=0")
	}

	huge := smallCfg(3)
	huge.Shards = 10000 // 20 servers → clamps to 20
	if _, err := Run(huge); err != nil {
		t.Fatalf("oversized shard count: %v", err)
	}

	neg := smallCfg(3)
	neg.Shards = -1
	if _, err := Run(neg); err == nil {
		t.Fatal("negative shard count must be rejected")
	}
}

// TestFleetShardPopulationInvariants: sharding repartitions the
// population without recomposing it — the per-implementation server
// and user totals are identical for any shard count, and the shard
// totals add up to the configured population.
func TestFleetShardPopulationInvariants(t *testing.T) {
	base := mustRun(t, smallCfg(5))
	for _, shards := range []int{2, 3, 7, 20} {
		cfg := smallCfg(5)
		cfg.Shards = shards
		rep := mustRun(t, cfg)
		if rep.Users != base.Users || rep.Servers != base.Servers {
			t.Fatalf("shards=%d: population %d/%d, want %d/%d",
				shards, rep.Users, rep.Servers, base.Users, base.Servers)
		}
		for k := range rep.PerImpl {
			if rep.PerImpl[k].Users != base.PerImpl[k].Users ||
				rep.PerImpl[k].Servers != base.PerImpl[k].Servers {
				t.Fatalf("shards=%d: impl %s composition %d users/%d servers, want %d/%d",
					shards, rep.PerImpl[k].Name,
					rep.PerImpl[k].Users, rep.PerImpl[k].Servers,
					base.PerImpl[k].Users, base.PerImpl[k].Servers)
			}
		}
	}
}

// shardReports runs each unit of a plan in isolation and returns the
// per-unit Reports — the raw inputs of the merge reduction.
func shardReports(t *testing.T, cfg Config) []*Report {
	t.Helper()
	cfg = cfg.withDefaults()
	plan, err := planRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]*Report, len(plan.units))
	for s := range reps {
		f := buildUnit(cfg, plan, plan.units[s], false)
		f.sim.RunUntil(f.end)
		reps[s] = f.report()
	}
	return reps
}

// cloneReports re-runs the shards (each runShard is deterministic), so
// each merge trial starts from fresh, unmutated Reports.
func mergeOrder(t *testing.T, cfg Config, order []int) []byte {
	t.Helper()
	reps := shardReports(t, cfg)
	acc := reps[order[0]]
	for _, i := range order[1:] {
		if err := acc.Merge(reps[i]); err != nil {
			t.Fatal(err)
		}
	}
	return mustJSON(t, acc)
}

// TestFleetMergeCommutative mirrors internal/stats' merge property
// tests: folding the per-shard Reports in any permutation yields
// byte-identical results.
func TestFleetMergeCommutative(t *testing.T) {
	cfg := shardedCfg(7)
	order := []int{0, 1, 2, 3, 4, 5, 6}
	base := mergeOrder(t, cfg, order)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		if got := mergeOrder(t, cfg, rng.Perm(len(order))); !bytes.Equal(got, base) {
			t.Fatalf("merge permutation changed the report:\n%s\nvs\n%s", got, base)
		}
	}
}

// TestFleetMergeAssociative: merging pre-merged halves equals the flat
// left-to-right fold.
func TestFleetMergeAssociative(t *testing.T) {
	cfg := shardedCfg(7)
	base := mergeOrder(t, cfg, []int{0, 1, 2, 3, 4, 5, 6})

	reps := shardReports(t, cfg)
	left, right := reps[0], reps[3]
	for _, i := range []int{1, 2} {
		if err := left.Merge(reps[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{4, 5, 6} {
		if err := right.Merge(reps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, left); !bytes.Equal(got, base) {
		t.Fatalf("grouped merge diverged from flat merge:\n%s\nvs\n%s", got, base)
	}
}

// TestFleetMergeGuards: the merge must refuse mismatched science and
// Reports that lost their backing sketches in a JSON round trip.
func TestFleetMergeGuards(t *testing.T) {
	reps := shardReports(t, shardedCfg(9))

	var restored Report
	if err := json.Unmarshal(mustJSON(t, reps[0]), &restored); err != nil {
		t.Fatal(err)
	}
	if err := restored.Merge(reps[1]); err == nil {
		t.Fatal("restored Report must refuse to merge (sketches lost)")
	}
	if err := reps[0].Merge(&restored); err == nil {
		t.Fatal("merging a restored Report must fail (sketches lost)")
	}

	other := smallCfg(9)
	other.BucketMin = 15
	mismatched := mustRun(t, other)
	if err := reps[0].Merge(mismatched); err == nil {
		t.Fatal("mismatched bucket widths must refuse to merge")
	}

	if err := reps[2].Merge(nil); err != nil {
		t.Fatalf("nil merge must be a no-op: %v", err)
	}
}

// TestFleetWithMetrics: the metrics option folds every shard's engine
// counters into the caller's registry without perturbing report bytes,
// and the folded totals agree with the report.
func TestFleetWithMetrics(t *testing.T) {
	golden := mustJSON(t, mustRun(t, shardedCfg(13)))

	m := metrics.New()
	rep, err := Run(shardedCfg(13), WithWorkers(4), WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, rep); !bytes.Equal(got, golden) {
		t.Fatal("attaching a metrics registry changed report bytes")
	}
	if got := m.Counter("fleet.flows").Value(); got != rep.Flows {
		t.Fatalf("fleet.flows = %d, want %d", got, rep.Flows)
	}
	if got := m.Counter("fleet.wakeups").Value(); got != rep.Wakeups {
		t.Fatalf("fleet.wakeups = %d, want %d", got, rep.Wakeups)
	}
	if got := m.Gauge("fleet.blocked_users").Value(); got != rep.BlockedAtEnd {
		t.Fatalf("fleet.blocked_users = %d, want %d", got, rep.BlockedAtEnd)
	}
	if got := m.Counter("fleet.replacements").Value(); got != rep.Replacements {
		t.Fatalf("fleet.replacements = %d, want %d", got, rep.Replacements)
	}
}

// TestFleetShardPanicIsolation: a panicking unit must surface as an
// error naming the unit, not kill the process.
func TestFleetShardPanicIsolation(t *testing.T) {
	e, err := NewEngine(shardedCfg(1), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	err = e.each(func(i int) error {
		if i == 2 {
			panic("poison")
		}
		return nil
	})
	if err == nil {
		t.Fatal("poisoned unit must return an error")
	}
	if !strings.Contains(err.Error(), "shard 2") || !strings.Contains(err.Error(), "poison") {
		t.Fatalf("error must name the failing shard and cause, got: %v", err)
	}
}

// TestPlanShardsBalance: contiguous cover of the server space, sizes
// differing by at most one, for divisible and non-divisible counts.
func TestPlanShardsBalance(t *testing.T) {
	for _, tc := range []struct{ users, ups, shards int }{
		{500, 25, 1}, {500, 25, 4}, {500, 25, 7}, {500, 25, 20},
		{500, 25, 99}, {501, 25, 3}, {10, 50, 4},
	} {
		cfg := Config{Seed: 1, Users: tc.users, UsersPerServer: tc.ups, Shards: tc.shards}.withDefaults()
		plan, err := planRun(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nServers := (tc.users + tc.ups - 1) / tc.ups
		if plan.nServers != nServers {
			t.Fatalf("%+v: nServers = %d, want %d", tc, plan.nServers, nServers)
		}
		want := tc.shards
		if want > nServers {
			want = nServers
		}
		if len(plan.units) != want {
			t.Fatalf("%+v: %d shards, want %d", tc, len(plan.units), want)
		}
		at, min, max := 0, nServers, 0
		for s, u := range plan.units {
			if u.lo != at || u.hi <= u.lo {
				t.Fatalf("%+v: shard %d range [%d,%d) not contiguous from %d", tc, s, u.lo, u.hi, at)
			}
			n := u.hi - u.lo
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
			at = u.hi
		}
		if at != nServers {
			t.Fatalf("%+v: shards cover [0,%d), want [0,%d)", tc, at, nServers)
		}
		if max-min > 1 {
			t.Fatalf("%+v: shard sizes range %d..%d, want balanced", tc, min, max)
		}
	}
}
