package fleet

import (
	"time"

	"sslab/internal/netsim"
	"sslab/internal/region"
)

// The policy layer interprets a region.Schedule inside a running unit.
// Events chain: applying event i schedules event i+1, so the entire
// pending state is one integer (Fleet.policyNext) plus at most one
// scheduled AtCall carrying the unit's pre-allocated policyArg — which
// is what lets a snapshot capture and re-arm a schedule mid-run.

// policyArg is the pre-allocated closure-free scheduling argument for
// policy events (one per unit).
type policyArg struct {
	f *Fleet
}

// runPolicy is the AtCall trampoline for schedule events.
func runPolicy(x any) {
	x.(*policyArg).f.applyPolicy()
}

// applyPolicy applies the next schedule event to the unit's censor and
// chains the one after.
func (f *Fleet) applyPolicy() {
	e := f.schedule[f.policyNext]
	f.policyNext++
	switch e.Kind {
	case region.KindSensitivity:
		f.gfw.SetSensitivity(e.Value)
	case region.KindBlockTTL:
		f.gfw.SetBlockTTL(e.Value, e.JitterHours)
	case region.KindPause:
		f.gfw.SetProbingPaused(true)
	case region.KindResume:
		f.gfw.SetProbingPaused(false)
	}
	f.schedulePolicy()
}

// schedulePolicy arms the next unapplied schedule event, if any. Same-
// time events chain within the same virtual instant (the simulator
// clamps past times to now), in declaration order.
func (f *Fleet) schedulePolicy() {
	if f.policyNext >= len(f.schedule) {
		return
	}
	at := netsim.Epoch.Add(time.Duration(f.schedule[f.policyNext].AtHours * float64(time.Hour)))
	f.sim.AtCall(at, runPolicy, &f.parg)
}
