package fleet

import (
	"encoding/json"
	"testing"
)

// smallCfg is a population small enough for unit tests but big enough
// to exercise every engine path (diurnal thinning, probing, blocking,
// replacement).
func smallCfg(seed int64) Config {
	return Config{
		Seed:           seed,
		Users:          500,
		UsersPerServer: 25,
		Hours:          6,
		BucketMin:      30,
	}
}

func mustRun(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func reportJSON(t *testing.T, r *Report) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return b
}

// TestFleetDeterminism pins the core contract: equal seeds give
// byte-identical reports.
func TestFleetDeterminism(t *testing.T) {
	a := reportJSON(t, mustRun(t, smallCfg(7)))
	b := reportJSON(t, mustRun(t, smallCfg(7)))
	if string(a) != string(b) {
		t.Fatal("same-seed fleet runs produced different reports")
	}
	c := reportJSON(t, mustRun(t, smallCfg(8)))
	if string(a) == string(c) {
		t.Fatal("different seeds produced identical reports (seed is not wired through)")
	}
}

// TestFleetVerdictCacheInvisible: enabling the censor's verdict cache
// changes nothing about a fleet run's report — same flows, probes,
// blocks, curves — at any capacity, including one small enough to churn.
// Only Config (which records the knob) is excluded from the comparison.
func TestFleetVerdictCacheInvisible(t *testing.T) {
	stripped := func(cacheEntries int) []byte {
		cfg := smallCfg(7)
		cfg.GFW.VerdictCache = cacheEntries
		rep := mustRun(t, cfg)
		rep.Config = Config{}
		return reportJSON(t, rep)
	}
	base := stripped(0)
	for _, entries := range []int{16, 4096} {
		if got := stripped(entries); string(got) != string(base) {
			t.Fatalf("verdict cache (%d entries) changed the fleet report", entries)
		}
	}
}

// TestFleetShape checks structural invariants of a run's report.
func TestFleetShape(t *testing.T) {
	cfg := smallCfg(11)
	rep := mustRun(t, cfg)

	if rep.Users != cfg.Users {
		t.Fatalf("Users = %d, want %d", rep.Users, cfg.Users)
	}
	if want := cfg.Users / cfg.UsersPerServer; rep.Servers != want {
		t.Fatalf("Servers = %d, want %d", rep.Servers, want)
	}
	if rep.Wakeups == 0 || rep.Flows == 0 {
		t.Fatalf("engine idle: wakeups=%d flows=%d", rep.Wakeups, rep.Flows)
	}
	if rep.Flows > rep.Wakeups {
		t.Fatalf("flows (%d) exceed wakeups (%d): diurnal thinning missing", rep.Flows, rep.Wakeups)
	}
	buckets := cfg.Hours * 60 / cfg.BucketMin
	if len(rep.BlockedCurve) != buckets || len(rep.ProbeLoad) != buckets {
		t.Fatalf("series lengths %d/%d, want %d buckets",
			len(rep.BlockedCurve), len(rep.ProbeLoad), buckets)
	}
	var tsFlows int64
	for _, n := range rep.FlowsPerBucket.Counts {
		tsFlows += n
	}
	if tsFlows != rep.Flows {
		t.Fatalf("FlowsPerBucket sums to %d, want Flows=%d", tsFlows, rep.Flows)
	}
	// Median wake gap should track the configured Poisson rate:
	// exp(mean 30min) has median 30·ln2 ≈ 20.8 min.
	gapMin := rep.MedianWakeGapS / 60
	if gapMin < 15 || gapMin > 27 {
		t.Fatalf("median wake gap %.1f min, want ≈ 20.8 min", gapMin)
	}
}

// TestFleetBlockingDynamics drives an all-undefended population at full
// censor sensitivity and checks the block → user-outage → replacement
// chain fires.
func TestFleetBlockingDynamics(t *testing.T) {
	cfg := smallCfg(3)
	cfg.Users = 800
	cfg.UsersPerServer = 40
	cfg.Hours = 12
	cfg.PeakFlowsPerHour = 6
	cfg.Mix = []ImplShare{{Impl: "sspython", Weight: 1}}
	cfg.GFW.Sensitivity = 1
	cfg.GFW.ReplayBase = 0.3 // record aggressively so blocks arrive in a small run
	rep := mustRun(t, cfg)

	if rep.Blocks == 0 {
		t.Fatal("no block events against an all-undefended population at sensitivity 1")
	}
	if rep.EverBlockedUsers == 0 {
		t.Fatal("block events occurred but no user ever observed an outage")
	}
	if rep.Replacements == 0 {
		t.Fatal("users were blocked but no server was ever replaced")
	}
	if rep.DetectionLatency.N == 0 {
		t.Fatal("blocks occurred but no detection latency was resolved (epochs map broken)")
	}
	if rep.ServerLifetime.N != rep.Replacements {
		t.Fatalf("lifetime samples %d != replacements %d", rep.ServerLifetime.N, rep.Replacements)
	}
	if rep.BlockedUserFraction <= 0 || rep.BlockedUserFraction > 1 {
		t.Fatalf("BlockedUserFraction = %v", rep.BlockedUserFraction)
	}
	if rep.DetectionLatency.P50 <= 0 {
		t.Fatalf("median detection latency %v s", rep.DetectionLatency.P50)
	}
}

// TestFleetNeverBlockCensor pins the negative-Sensitivity contract: the
// censor probes but never blocks, so no user ever observes an outage.
func TestFleetNeverBlockCensor(t *testing.T) {
	cfg := smallCfg(5)
	cfg.Mix = []ImplShare{{Impl: "sspython", Weight: 1}}
	cfg.PeakFlowsPerHour = 6
	cfg.GFW.Sensitivity = -1
	rep := mustRun(t, cfg)

	if rep.ProbesSent == 0 {
		t.Fatal("probe-only censor sent no probes")
	}
	if rep.Blocks != 0 || rep.EverBlockedUsers != 0 || rep.Replacements != 0 {
		t.Fatalf("negative sensitivity still blocked: blocks=%d users=%d repl=%d",
			rep.Blocks, rep.EverBlockedUsers, rep.Replacements)
	}
	for _, n := range rep.BlockedCurve {
		if n != 0 {
			t.Fatal("BlockedCurve nonzero under a never-block censor")
		}
	}
}

// TestFleetDefendedMixResists checks the paper's §6 asymmetry: a
// population of replay-defended servers (libev-new) survives the same
// censor that blocks undefended ones.
func TestFleetDefendedMixResists(t *testing.T) {
	cfg := smallCfg(3)
	cfg.PeakFlowsPerHour = 6
	cfg.Mix = []ImplShare{{Impl: "libev-new", Weight: 1}}
	cfg.GFW.Sensitivity = 1
	rep := mustRun(t, cfg)
	if rep.Blocks != 0 {
		t.Fatalf("replay-defended population got %d block events", rep.Blocks)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	cfg := smallCfg(1)
	cfg.Mix = []ImplShare{{Impl: "no-such-impl", Weight: 1}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown implementation accepted")
	}
	cfg = smallCfg(1)
	cfg.Mix = []ImplShare{{Impl: "ssr", Weight: -1}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative mix weight accepted")
	}
}
