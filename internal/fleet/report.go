package fleet

import (
	"errors"
	"fmt"
	"strings"

	"sslab/internal/gfw"
	"sslab/internal/stats"
)

// ErrUnmergeableReport marks a Report that cannot participate in Merge
// because its backing quantile sketches are gone. The sketches are
// unexported (the campaign flattener walks the Report's JSON, and raw
// sketch state would pollute the flattened metric set), so any Report
// that has passed through JSON — or was zero-constructed rather than
// produced by a run — trips this. Test with errors.Is.
var ErrUnmergeableReport = errors.New("report has no backing sketches (restored from JSON?)")

// Report is the population-scale reduction of one fleet run. Every
// field is a scalar, a quantile digest, or a bucketed series — the
// campaign engine's generic flattener turns the scalars and digests
// into mean ± CI metrics across seeds and unions the series.
type Report struct {
	Config Config

	Users   int
	Servers int

	// Engine totals.
	Wakeups int64
	Flows   int64

	// Censor totals.
	Triggers         int
	PayloadsRecorded int
	ProbesSent       int
	Blocks           int

	// Population outcomes.
	EverBlockedUsers    int64
	BlockedUserFraction float64
	BlockedAtEnd        int64
	Replacements        int64

	// DetectionLatency is block time − endpoint activation, in seconds.
	DetectionLatency stats.Summary
	// ServerLifetime is endpoint activation → first user-observed
	// failure, in seconds, over epochs that ended in replacement
	// (epochs alive at run end are censored and excluded).
	ServerLifetime stats.Summary
	// MedianWakeGapS is the sketch estimate of the median wake-up gap —
	// a model diagnostic (should track 60·ln2/PeakFlowsPerHour minutes).
	MedianWakeGapS float64

	// BucketMin is the width of the series buckets, minutes.
	BucketMin int
	// BlockedCurve samples the currently-cut-off user count per bucket.
	BlockedCurve []int64
	// ProbeLoad counts probes the censor sent per bucket.
	ProbeLoad []int64
	// FlowsPerBucket counts genuine client flows per bucket.
	FlowsPerBucket stats.TimeSeries

	// PerImpl breaks population outcomes down by server implementation,
	// in mix order. The campaign flattener keys these rows by Name.
	PerImpl []ImplStats `json:",omitempty"`
	// StageRecordings attributes the censor's recorded payloads to the
	// detector stage that claimed each flow, in chain order.
	StageRecordings []gfw.StageCount `json:",omitempty"`
	// PerRegion breaks the population outcome down by censorship region,
	// in topology order. Only present for runs with two or more regions;
	// single-region reports are byte-identical to pre-region ones.
	PerRegion []RegionStats `json:",omitempty"`

	// Mergeable backing sketches for the Summary fields above. They are
	// unexported on purpose: the campaign flattener walks the Report's
	// JSON, and raw sketch state would pollute the flattened metric set.
	// Reports restored from JSON lose them, so Merge only works on
	// in-memory Reports (which is all the shard reduction needs).
	latQ  *stats.Quantile
	lifeQ *stats.Quantile
	gapQ  *stats.Quantile
}

// Merge folds another shard's Report into r, leaving r the Report of
// the combined population: counters and curves add, the quantile
// sketches behind DetectionLatency/ServerLifetime/MedianWakeGapS merge
// exactly (bucket counts add), and the derived fields (fractions,
// summaries) are recomputed from the merged state. Merging is
// associative and commutative up to r.Config, which keeps the
// receiver's value; both Reports must come from the same Config (same
// bucket width, mix, and detector chain). Reports restored from JSON
// cannot merge — their backing sketches are gone.
func (r *Report) Merge(o *Report) error {
	if o == nil {
		return nil
	}
	if r.latQ == nil || r.lifeQ == nil || r.gapQ == nil ||
		o.latQ == nil || o.lifeQ == nil || o.gapQ == nil {
		return fmt.Errorf("fleet: %w", ErrUnmergeableReport)
	}
	if r.BucketMin != o.BucketMin {
		return fmt.Errorf("fleet: merging reports with bucket widths %d and %d min", r.BucketMin, o.BucketMin)
	}
	if len(r.PerImpl) != len(o.PerImpl) {
		return fmt.Errorf("fleet: merging reports with %d and %d implementations", len(r.PerImpl), len(o.PerImpl))
	}
	for k := range r.PerImpl {
		if r.PerImpl[k].Name != o.PerImpl[k].Name {
			return fmt.Errorf("fleet: merging reports with mixes %q and %q at row %d",
				r.PerImpl[k].Name, o.PerImpl[k].Name, k)
		}
	}
	if len(r.StageRecordings) != len(o.StageRecordings) {
		return fmt.Errorf("fleet: merging reports with %d and %d detector stages",
			len(r.StageRecordings), len(o.StageRecordings))
	}
	for k := range r.StageRecordings {
		if r.StageRecordings[k].Name != o.StageRecordings[k].Name {
			return fmt.Errorf("fleet: merging reports with stages %q and %q at position %d",
				r.StageRecordings[k].Name, o.StageRecordings[k].Name, k)
		}
	}

	r.Users += o.Users
	r.Servers += o.Servers
	r.Wakeups += o.Wakeups
	r.Flows += o.Flows
	r.Triggers += o.Triggers
	r.PayloadsRecorded += o.PayloadsRecorded
	r.ProbesSent += o.ProbesSent
	r.Blocks += o.Blocks
	r.EverBlockedUsers += o.EverBlockedUsers
	r.BlockedAtEnd += o.BlockedAtEnd
	r.Replacements += o.Replacements

	if err := r.latQ.Merge(o.latQ); err != nil {
		return err
	}
	if err := r.lifeQ.Merge(o.lifeQ); err != nil {
		return err
	}
	if err := r.gapQ.Merge(o.gapQ); err != nil {
		return err
	}
	r.BlockedCurve = stats.AddInt64s(r.BlockedCurve, o.BlockedCurve)
	r.ProbeLoad = stats.AddInt64s(r.ProbeLoad, o.ProbeLoad)
	if err := r.FlowsPerBucket.Merge(&o.FlowsPerBucket); err != nil {
		return err
	}
	for k := range r.PerImpl {
		r.PerImpl[k].Users += o.PerImpl[k].Users
		r.PerImpl[k].Servers += o.PerImpl[k].Servers
		r.PerImpl[k].EverBlockedUsers += o.PerImpl[k].EverBlockedUsers
		r.PerImpl[k].Blocks += o.PerImpl[k].Blocks
		r.PerImpl[k].Fraction = 0
		if r.PerImpl[k].Users > 0 {
			r.PerImpl[k].Fraction = float64(r.PerImpl[k].EverBlockedUsers) / float64(r.PerImpl[k].Users)
		}
	}
	for k := range r.StageRecordings {
		r.StageRecordings[k].Recorded += o.StageRecordings[k].Recorded
	}
	// Regions are disjoint populations, so per-region rows concatenate.
	r.PerRegion = append(r.PerRegion, o.PerRegion...)

	// Derived views of the merged state.
	r.DetectionLatency = r.latQ.Summarize()
	r.ServerLifetime = r.lifeQ.Summarize()
	r.MedianWakeGapS = r.gapQ.Quantile(0.5)
	r.BlockedUserFraction = 0
	if r.Users > 0 {
		r.BlockedUserFraction = float64(r.EverBlockedUsers) / float64(r.Users)
	}
	return nil
}

// RegionStats is one region's slice of the population outcome: the
// same headline numbers as the global Report, restricted to the users
// and servers the topology placed under that region's censor. The
// campaign flattener keys these rows by Name.
type RegionStats struct {
	Name    string
	Users   int
	Servers int

	Wakeups    int64
	Flows      int64
	ProbesSent int
	Blocks     int

	EverBlockedUsers    int64
	BlockedUserFraction float64
	BlockedAtEnd        int64
	Replacements        int64

	DetectionLatency stats.Summary
	ServerLifetime   stats.Summary
}

// regionStats projects a (regionally merged) Report onto its RegionStats row.
func regionStats(name string, rep *Report) RegionStats {
	return RegionStats{
		Name:                name,
		Users:               rep.Users,
		Servers:             rep.Servers,
		Wakeups:             rep.Wakeups,
		Flows:               rep.Flows,
		ProbesSent:          rep.ProbesSent,
		Blocks:              rep.Blocks,
		EverBlockedUsers:    rep.EverBlockedUsers,
		BlockedUserFraction: rep.BlockedUserFraction,
		BlockedAtEnd:        rep.BlockedAtEnd,
		Replacements:        rep.Replacements,
		DetectionLatency:    rep.DetectionLatency,
		ServerLifetime:      rep.ServerLifetime,
	}
}

// ImplStats is the per-implementation slice of the population outcome.
type ImplStats struct {
	Name    string
	Users   int64
	Servers int64
	// EverBlockedUsers counts this implementation's users that observed
	// blocking at least once; Fraction normalizes by its user count.
	EverBlockedUsers int64
	Fraction         float64
	// Blocks counts endpoint block events against this implementation —
	// for the web implementation these are false positives.
	Blocks int64
}

// report reduces the finished run.
func (f *Fleet) report() *Report {
	// Resolve block events to detection latencies and per-impl blocks
	// against endpoint activation epochs (both O(blocks); no per-flow
	// state involved).
	implBlocks := make([]int64, len(f.implNames))
	for _, ev := range f.gfw.BlockEvents {
		if e, ok := f.epochs[ev.Server]; ok {
			f.latencies.Observe(ev.Time.Sub(e.at).Seconds())
			implBlocks[e.impl]++
		}
	}
	perImpl := make([]ImplStats, len(f.implNames))
	for k, name := range f.implNames {
		perImpl[k] = ImplStats{
			Name:             name,
			Users:            f.implUsers[k],
			Servers:          f.implServers[k],
			EverBlockedUsers: f.implEver[k],
			Blocks:           implBlocks[k],
		}
		if f.implUsers[k] > 0 {
			perImpl[k].Fraction = float64(f.implEver[k]) / float64(f.implUsers[k])
		}
	}
	r := &Report{
		Config:           f.cfg,
		Users:            len(f.users), // this shard's slice; Merge restores the population total
		Servers:          len(f.servers),
		Wakeups:          f.wakeups,
		Flows:            f.flows,
		Triggers:         f.gfw.Triggers,
		PayloadsRecorded: f.gfw.PayloadsRecorded,
		ProbesSent:       f.gfw.ProbesSent,
		Blocks:           len(f.gfw.BlockEvents),
		EverBlockedUsers: f.everBlocked,
		BlockedAtEnd:     f.blockedNow,
		Replacements:     f.replacements,
		DetectionLatency: f.latencies.Summarize(),
		ServerLifetime:   f.lifetimes.Summarize(),
		MedianWakeGapS:   f.gapQ.Quantile(0.5),
		BucketMin:        f.cfg.BucketMin,
		BlockedCurve:     f.blockedCurve,
		ProbeLoad:        f.probeLoad,
		FlowsPerBucket:   *f.flowsTS,
		PerImpl:          perImpl,
		StageRecordings:  f.gfw.StageRecordings(),
		latQ:             f.latencies,
		lifeQ:            f.lifetimes,
		gapQ:             f.gapQ,
	}
	if len(f.users) > 0 {
		r.BlockedUserFraction = float64(f.everBlocked) / float64(len(f.users))
	}
	return r
}

func ints(v []int64) []int {
	out := make([]int, len(v))
	for i, x := range v {
		out[i] = int(x)
	}
	return out
}

func fmtDur(sec float64) string {
	switch {
	case sec <= 0:
		return "-"
	case sec < 90:
		return fmt.Sprintf("%.0fs", sec)
	case sec < 2*3600:
		return fmt.Sprintf("%.1fm", sec/60)
	default:
		return fmt.Sprintf("%.1fh", sec/3600)
	}
}

// Render implements experiment.Report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet: %d users on %d servers, %dh virtual (seed %d)\n",
		r.Users, r.Servers, r.Config.Hours, r.Config.Seed)
	fmt.Fprintf(&b, "  wake-ups %d, flows %d (median gap %s)\n",
		r.Wakeups, r.Flows, fmtDur(r.MedianWakeGapS))
	fmt.Fprintf(&b, "  censor: triggers %d, recorded %d, probes %d, block events %d\n",
		r.Triggers, r.PayloadsRecorded, r.ProbesSent, r.Blocks)
	fmt.Fprintf(&b, "  users ever blocked: %d (%.2f%%), still cut off at end: %d\n",
		r.EverBlockedUsers, 100*r.BlockedUserFraction, r.BlockedAtEnd)
	fmt.Fprintf(&b, "  servers replaced: %d\n", r.Replacements)
	for _, im := range r.PerImpl {
		fmt.Fprintf(&b, "    %-13s %6d users / %4d servers: %5.2f%% ever blocked, %d blocks\n",
			im.Name, im.Users, im.Servers, 100*im.Fraction, im.Blocks)
	}
	for _, sc := range r.StageRecordings {
		fmt.Fprintf(&b, "    stage %-15s recorded %d\n", sc.Name, sc.Recorded)
	}
	for _, rg := range r.PerRegion {
		fmt.Fprintf(&b, "  region %-10s %6d users / %4d servers: %5.2f%% ever blocked, %d blocks, median latency %s\n",
			rg.Name, rg.Users, rg.Servers, 100*rg.BlockedUserFraction, rg.Blocks,
			fmtDur(rg.DetectionLatency.P50))
	}
	if r.DetectionLatency.N > 0 {
		fmt.Fprintf(&b, "  detection latency: p25 %s, median %s, p90 %s (n=%d)\n",
			fmtDur(r.DetectionLatency.P25), fmtDur(r.DetectionLatency.P50),
			fmtDur(r.DetectionLatency.P90), r.DetectionLatency.N)
	}
	if r.ServerLifetime.N > 0 {
		fmt.Fprintf(&b, "  server lifetime (replaced epochs): median %s, p90 %s (n=%d)\n",
			fmtDur(r.ServerLifetime.P50), fmtDur(r.ServerLifetime.P90), r.ServerLifetime.N)
	}
	if len(r.BlockedCurve) > 0 {
		fmt.Fprintf(&b, "  blocked users over time:  %s\n", stats.Sparkline(ints(r.BlockedCurve), 1))
	}
	if len(r.ProbeLoad) > 0 {
		fmt.Fprintf(&b, "  prober load over time:    %s\n", stats.Sparkline(ints(r.ProbeLoad), 1))
	}
	if len(r.FlowsPerBucket.Counts) > 0 {
		fmt.Fprintf(&b, "  client flows over time:   %s\n", stats.Sparkline(r.FlowsPerBucket.Ints(), 1))
	}
	return b.String()
}
