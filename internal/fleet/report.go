package fleet

import (
	"fmt"
	"strings"

	"sslab/internal/gfw"
	"sslab/internal/stats"
)

// Report is the population-scale reduction of one fleet run. Every
// field is a scalar, a quantile digest, or a bucketed series — the
// campaign engine's generic flattener turns the scalars and digests
// into mean ± CI metrics across seeds and unions the series.
type Report struct {
	Config Config

	Users   int
	Servers int

	// Engine totals.
	Wakeups int64
	Flows   int64

	// Censor totals.
	Triggers         int
	PayloadsRecorded int
	ProbesSent       int
	Blocks           int

	// Population outcomes.
	EverBlockedUsers    int64
	BlockedUserFraction float64
	BlockedAtEnd        int64
	Replacements        int64

	// DetectionLatency is block time − endpoint activation, in seconds.
	DetectionLatency stats.Summary
	// ServerLifetime is endpoint activation → first user-observed
	// failure, in seconds, over epochs that ended in replacement
	// (epochs alive at run end are censored and excluded).
	ServerLifetime stats.Summary
	// MedianWakeGapS is the P² estimate of the median wake-up gap — a
	// model diagnostic (should track 60·ln2/PeakFlowsPerHour minutes).
	MedianWakeGapS float64

	// BucketMin is the width of the series buckets, minutes.
	BucketMin int
	// BlockedCurve samples the currently-cut-off user count per bucket.
	BlockedCurve []int64
	// ProbeLoad counts probes the censor sent per bucket.
	ProbeLoad []int64
	// FlowsPerBucket counts genuine client flows per bucket.
	FlowsPerBucket stats.TimeSeries

	// PerImpl breaks population outcomes down by server implementation,
	// in mix order. The campaign flattener keys these rows by Name.
	PerImpl []ImplStats `json:",omitempty"`
	// StageRecordings attributes the censor's recorded payloads to the
	// detector stage that claimed each flow, in chain order.
	StageRecordings []gfw.StageCount `json:",omitempty"`
}

// ImplStats is the per-implementation slice of the population outcome.
type ImplStats struct {
	Name    string
	Users   int64
	Servers int64
	// EverBlockedUsers counts this implementation's users that observed
	// blocking at least once; Fraction normalizes by its user count.
	EverBlockedUsers int64
	Fraction         float64
	// Blocks counts endpoint block events against this implementation —
	// for the web implementation these are false positives.
	Blocks int64
}

// report reduces the finished run.
func (f *Fleet) report() *Report {
	// Resolve block events to detection latencies and per-impl blocks
	// against endpoint activation epochs (both O(blocks); no per-flow
	// state involved).
	implBlocks := make([]int64, len(f.implNames))
	for _, ev := range f.gfw.BlockEvents {
		if e, ok := f.epochs[ev.Server]; ok {
			f.latencies.Observe(ev.Time.Sub(e.at).Seconds())
			implBlocks[e.impl]++
		}
	}
	perImpl := make([]ImplStats, len(f.implNames))
	for k, name := range f.implNames {
		perImpl[k] = ImplStats{
			Name:             name,
			Users:            f.implUsers[k],
			Servers:          f.implServers[k],
			EverBlockedUsers: f.implEver[k],
			Blocks:           implBlocks[k],
		}
		if f.implUsers[k] > 0 {
			perImpl[k].Fraction = float64(f.implEver[k]) / float64(f.implUsers[k])
		}
	}
	r := &Report{
		Config:           f.cfg,
		Users:            f.cfg.Users,
		Servers:          len(f.servers),
		Wakeups:          f.wakeups,
		Flows:            f.flows,
		Triggers:         f.gfw.Triggers,
		PayloadsRecorded: f.gfw.PayloadsRecorded,
		ProbesSent:       f.gfw.ProbesSent,
		Blocks:           len(f.gfw.BlockEvents),
		EverBlockedUsers: f.everBlocked,
		BlockedAtEnd:     f.blockedNow,
		Replacements:     f.replacements,
		DetectionLatency: f.latencies.Summarize(),
		ServerLifetime:   f.lifetimes.Summarize(),
		MedianWakeGapS:   f.gapP2.Value(),
		BucketMin:        f.cfg.BucketMin,
		BlockedCurve:     f.blockedCurve,
		ProbeLoad:        f.probeLoad,
		FlowsPerBucket:   *f.flowsTS,
		PerImpl:          perImpl,
		StageRecordings:  f.gfw.StageRecordings(),
	}
	if f.cfg.Users > 0 {
		r.BlockedUserFraction = float64(f.everBlocked) / float64(f.cfg.Users)
	}
	return r
}

func ints(v []int64) []int {
	out := make([]int, len(v))
	for i, x := range v {
		out[i] = int(x)
	}
	return out
}

func fmtDur(sec float64) string {
	switch {
	case sec <= 0:
		return "-"
	case sec < 90:
		return fmt.Sprintf("%.0fs", sec)
	case sec < 2*3600:
		return fmt.Sprintf("%.1fm", sec/60)
	default:
		return fmt.Sprintf("%.1fh", sec/3600)
	}
}

// Render implements experiment.Report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet: %d users on %d servers, %dh virtual (seed %d)\n",
		r.Users, r.Servers, r.Config.Hours, r.Config.Seed)
	fmt.Fprintf(&b, "  wake-ups %d, flows %d (median gap %s)\n",
		r.Wakeups, r.Flows, fmtDur(r.MedianWakeGapS))
	fmt.Fprintf(&b, "  censor: triggers %d, recorded %d, probes %d, block events %d\n",
		r.Triggers, r.PayloadsRecorded, r.ProbesSent, r.Blocks)
	fmt.Fprintf(&b, "  users ever blocked: %d (%.2f%%), still cut off at end: %d\n",
		r.EverBlockedUsers, 100*r.BlockedUserFraction, r.BlockedAtEnd)
	fmt.Fprintf(&b, "  servers replaced: %d\n", r.Replacements)
	for _, im := range r.PerImpl {
		fmt.Fprintf(&b, "    %-13s %6d users / %4d servers: %5.2f%% ever blocked, %d blocks\n",
			im.Name, im.Users, im.Servers, 100*im.Fraction, im.Blocks)
	}
	for _, sc := range r.StageRecordings {
		fmt.Fprintf(&b, "    stage %-15s recorded %d\n", sc.Name, sc.Recorded)
	}
	if r.DetectionLatency.N > 0 {
		fmt.Fprintf(&b, "  detection latency: p25 %s, median %s, p90 %s (n=%d)\n",
			fmtDur(r.DetectionLatency.P25), fmtDur(r.DetectionLatency.P50),
			fmtDur(r.DetectionLatency.P90), r.DetectionLatency.N)
	}
	if r.ServerLifetime.N > 0 {
		fmt.Fprintf(&b, "  server lifetime (replaced epochs): median %s, p90 %s (n=%d)\n",
			fmtDur(r.ServerLifetime.P50), fmtDur(r.ServerLifetime.P90), r.ServerLifetime.N)
	}
	if len(r.BlockedCurve) > 0 {
		fmt.Fprintf(&b, "  blocked users over time:  %s\n", stats.Sparkline(ints(r.BlockedCurve), 1))
	}
	if len(r.ProbeLoad) > 0 {
		fmt.Fprintf(&b, "  prober load over time:    %s\n", stats.Sparkline(ints(r.ProbeLoad), 1))
	}
	if len(r.FlowsPerBucket.Counts) > 0 {
		fmt.Fprintf(&b, "  client flows over time:   %s\n", stats.Sparkline(r.FlowsPerBucket.Ints(), 1))
	}
	return b.String()
}
