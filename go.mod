module sslab

go 1.22
