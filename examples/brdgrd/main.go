// Brdgrd demo: reproduce the §7.1 mitigation result — when the client's
// first flight is broken into small segments, the GFW's first-packet
// classifier stops triggering and active probing collapses; when shaping
// is disabled again, probing resumes (Figure 11).
package main

import (
	"fmt"
	"log"

	"sslab"
	"sslab/internal/gfw"
)

func main() {
	log.SetFlags(0)
	report, err := sslab.RunBrdgrdExperiment(sslab.BrdgrdConfig{
		Seed:      11,
		Hours:     200,
		OnWindows: [][2]int{{60, 120}},
		GFW:       gfw.Config{PoolSize: 3000},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Render())
	fmt.Printf("\nprobe rate dropped %.0f× while shaping was active\n",
		report.MeanRateOff/max(report.MeanRateOn, 0.01))
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
