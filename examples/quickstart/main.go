// Quickstart: run a Shadowsocks server and client in-process and fetch a
// page from a local HTTP server through the encrypted tunnel — the
// minimal end-to-end use of the library's public API.
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"sslab"
)

func main() {
	log.SetFlags(0)

	// A local web server stands in for the open internet.
	web, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(web, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "hello from the free internet")
	}))

	// The Shadowsocks server, as a user outside the censored network
	// would deploy it. The default profile is the hardened one that
	// resulted from the paper's responsible disclosure.
	srv, err := sslab.ListenServer("127.0.0.1:0", sslab.ServerConfig{
		Method:   "chacha20-ietf-poly1305",
		Password: "quickstart-secret",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("shadowsocks server on %s\n", srv.Addr())

	// The client, as a user inside the censored network would run it.
	cli, err := sslab.NewClient(sslab.ClientConfig{
		Server:   srv.Addr().String(),
		Method:   "chacha20-ietf-poly1305",
		Password: "quickstart-secret",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Fetch through the tunnel: everything on the wire between client
	// and server is ciphertext indistinguishable from random bytes.
	conn, err := cli.Dial(web.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: example\r\nConnection: close\r\n\r\n")

	status, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("through the tunnel: %s\n", strings.TrimSpace(status))
	fmt.Printf("server stats: accepted=%d proxied=%d\n",
		srv.Stats.Accepted.Load(), srv.Stats.Proxied.Load())
}
