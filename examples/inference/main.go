// Inference demo (§5.2.2): play the attacker. Scan each Shadowsocks
// implementation with random probes of every length 1–99 plus 221, then
// recover what it is running from the reactions alone — construction,
// IV/salt size (a 12-byte IV even pins the exact cipher), and version
// family. The post-disclosure behaviours are opaque: nothing can be
// inferred, which is the whole point of the §7.2 recommendations.
package main

import (
	"fmt"
	"log"

	"sslab/internal/probesim"
	"sslab/internal/reaction"
	"sslab/internal/sscrypto"
)

func main() {
	log.SetFlags(0)
	configs := []struct {
		profile reaction.Profile
		method  string
	}{
		{reaction.LibevOld, "chacha20"},
		{reaction.LibevOld, "chacha20-ietf"},
		{reaction.LibevOld, "aes-256-ctr"},
		{reaction.LibevOld, "aes-192-gcm"},
		{reaction.Outline106, "chacha20-ietf-poly1305"},
		{reaction.LibevNew, "aes-256-ctr"},
		{reaction.Outline107, "chacha20-ietf-poly1305"},
		{reaction.Hardened, "chacha20-ietf-poly1305"},
	}
	fmt.Printf("%-50s %s\n", "actually running", "attacker's inference from reactions")
	for i, c := range configs {
		spec, err := sscrypto.Lookup(c.method)
		if err != nil {
			log.Fatal(err)
		}
		m, err := probesim.ScanRandom(c.profile, spec, "inference-pw",
			probesim.RandomProbeLengths(), 300, int64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		inf := probesim.Infer(m)
		truth := fmt.Sprintf("%s %s / %s", c.profile.Name, c.profile.Versions, c.method)
		fmt.Printf("%-50s %s\n", truth, describe(inf))
	}
}

func describe(inf probesim.Inference) string {
	if !inf.Confident {
		return "nothing — consistent timeouts, indistinguishable from a silent service"
	}
	out := fmt.Sprintf("%v construction", inf.Kind)
	if inf.IVSize > 0 {
		out += fmt.Sprintf(", %d-byte IV/salt", inf.IVSize)
	}
	out += fmt.Sprintf(", %s %s", inf.Profile.Name, inf.Profile.Versions)
	if inf.CipherHint != "" {
		out += fmt.Sprintf(" (cipher must be %s)", inf.CipherHint)
	}
	return out
}
