// Reaction-matrix demo: regenerate Figure 10a, Figure 10b and Table 5 —
// how every studied Shadowsocks implementation reacts to random probes of
// each length and to replays, the fingerprints the GFW's probes exploit.
package main

import (
	"fmt"
	"log"

	"sslab"
)

func main() {
	log.SetFlags(0)
	report, err := sslab.RunReactionMatrices(sslab.MatrixConfig{Seed: 5, Trials: 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Render())
}
