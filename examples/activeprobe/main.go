// Active-probe demo: put an OutlineVPN-like server (no replay defense) and
// a Shadowsocks-libev-like server (replay filter) behind the simulated
// GFW, drive genuine client traffic, and watch the censor's staged
// escalation — the outline server answers identical replays with data and
// graduates to the targeted R3/R4 probes, while the libev server never
// does, exactly as §3.2 and §4.2 observed.
package main

import (
	"fmt"
	"log"
	"time"

	"sslab/internal/experiment"
	"sslab/internal/gfw"
	"sslab/internal/netsim"
	"sslab/internal/probe"
	"sslab/internal/reaction"
	"sslab/internal/sscrypto"
	"sslab/internal/trafficgen"
)

func main() {
	log.SetFlags(0)
	sim := netsim.NewSim()
	network := netsim.NewNetwork(sim)
	censor := gfw.New(gfw.Env{Sim: sim, Net: network}, gfw.WithConfig(gfw.Config{Seed: 7, PoolSize: 3000}))
	network.AddMiddlebox(censor)

	outlineEP := netsim.Endpoint{IP: "178.62.30.1", Port: 443}
	libevEP := netsim.Endpoint{IP: "178.62.30.2", Port: 8388}
	client := netsim.Endpoint{IP: "150.109.30.1", Port: 40000}

	outline, err := experiment.NewServerHost(sim, reaction.Outline107, "chacha20-ietf-poly1305", "pw")
	if err != nil {
		log.Fatal(err)
	}
	libev, err := experiment.NewServerHost(sim, reaction.LibevNew, "aes-256-gcm", "pw")
	if err != nil {
		log.Fatal(err)
	}
	network.AddHost(outlineEP, outline)
	network.AddHost(libevEP, libev)

	// Genuine usage: a client browsing through both proxies for 3 weeks.
	tg := trafficgen.New(7)
	ccp, _ := sscrypto.Lookup("chacha20-ietf-poly1305")
	gcm, _ := sscrypto.Lookup("aes-256-gcm")
	end := netsim.Epoch.Add(21 * 24 * time.Hour)
	var tick func()
	tick = func() {
		if sim.Now().After(end) {
			return
		}
		network.Connect(client, outlineEP, tg.FirstWirePacket(ccp, trafficgen.BrowseAlexa), false, time.Time{})
		network.Connect(client, libevEP, tg.FirstWirePacket(gcm, trafficgen.CurlHTTPS), false, time.Time{})
		sim.After(40*time.Second, tick)
	}
	sim.After(0, tick)
	sim.Run()

	fmt.Printf("3 weeks of virtual time, %d trigger connections, %d probes sent\n\n",
		censor.Triggers, censor.Log.Len())

	show := func(name string, ep netsim.Endpoint) {
		counts := map[probe.Type]int{}
		for i := range censor.Log.Records {
			if censor.Log.Records[i].DstIP == ep.IP {
				counts[censor.Log.Records[i].Type]++
			}
		}
		fmt.Printf("%s (stage %d):\n", name, censor.Stage(ep))
		for _, t := range []probe.Type{probe.R1, probe.R2, probe.R3, probe.R4, probe.R5, probe.R6, probe.NR1, probe.NR2} {
			if counts[t] > 0 {
				fmt.Printf("  %-4v %4d  %s\n", t, counts[t], describe(t))
			}
		}
		fmt.Println()
	}
	show("OutlineVPN v1.0.7 (no replay defense)", outlineEP)
	show("Shadowsocks-libev v3.3.1 (ppbloom replay filter)", libevEP)
}

func describe(t probe.Type) string {
	switch t {
	case probe.R1:
		return "identical replay of a recorded client flight"
	case probe.R2:
		return "replay, byte 0 changed (IV/salt attack)"
	case probe.R3:
		return "replay, bytes 0–7 and 62–63 changed — stage 2 only"
	case probe.R4:
		return "replay, byte 16 changed — stage 2 only"
	case probe.R5:
		return "replay, bytes 6 and 16 changed — rare"
	case probe.R6:
		return "replay, bytes 16–32 changed"
	case probe.NR1:
		return "random, lengths straddling IV-size thresholds"
	case probe.NR2:
		return "random, exactly 221 bytes"
	}
	return ""
}
