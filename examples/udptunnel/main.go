// UDP tunnel demo: relay datagrams (a DNS-style query/response exchange)
// through a Shadowsocks server's UDP associate path. Every datagram is
// independently encrypted with a fresh salt, so the tunnel looks like
// unrelated random packets on the wire.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"sslab"
)

func main() {
	log.SetFlags(0)

	// A local UDP responder stands in for a resolver.
	resolver, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer resolver.Close()
	go func() {
		buf := make([]byte, 1500)
		for {
			n, from, err := resolver.ReadFrom(buf)
			if err != nil {
				return
			}
			resolver.WriteTo(append([]byte("answer-to:"), buf[:n]...), from)
		}
	}()

	// The Shadowsocks server, relaying both TCP and UDP.
	srv, err := sslab.NewServer(sslab.ServerConfig{
		Method: "chacha20-ietf-poly1305", Password: "udp-secret",
	})
	if err != nil {
		log.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer pc.Close()
	go srv.ServeUDP(pc)
	fmt.Printf("shadowsocks UDP relay on %s\n", pc.LocalAddr())

	client, err := sslab.NewClient(sslab.ClientConfig{
		Server: pc.LocalAddr().String(), Method: "chacha20-ietf-poly1305", Password: "udp-secret",
	})
	if err != nil {
		log.Fatal(err)
	}
	u, err := client.DialUDP()
	if err != nil {
		log.Fatal(err)
	}
	defer u.Close()

	for _, q := range []string{"example.com?", "gfw.report?"} {
		if err := u.Send(resolver.LocalAddr().String(), []byte(q)); err != nil {
			log.Fatal(err)
		}
		from, answer, err := u.Recv(time.Now().Add(3 * time.Second))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %-14q -> %q (from %s)\n", q, answer, from)
	}
}
