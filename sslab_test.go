package sslab_test

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"sslab"
	"sslab/internal/reaction"
)

// TestPublicAPIProxyAndProbe exercises the facade end to end: run a
// server through the public constructors, tunnel data, then probe it the
// way the GFW would.
func TestPublicAPIProxyAndProbe(t *testing.T) {
	srv, err := sslab.ListenServer("127.0.0.1:0", sslab.ServerConfig{
		Method:   "chacha20-ietf-poly1305",
		Password: "facade-pw",
		Profile:  sslab.Outline106,
		Timeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Probe: the facade's Probe must reproduce the v1.0.6 bands live.
	payload := bytes.Repeat([]byte{0x42}, 256)
	if r, err := sslab.Probe(srv.Addr().String(), payload[:50]); err != nil || r == reaction.Timeout {
		t.Errorf("50-byte probe: %v, %v — want immediate close", r, err)
	}

	// Proxy: a hardened server serves a genuine client.
	h, err := sslab.ListenServer("127.0.0.1:0", sslab.ServerConfig{
		Method: "aes-256-gcm", Password: "facade-pw",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	echo := startTCPEcho(t)
	cli, err := sslab.NewClient(sslab.ClientConfig{
		Server: h.Addr().String(), Method: "aes-256-gcm", Password: "facade-pw",
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := cli.Dial(echo)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("facade"))
	got := make([]byte, 6)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil || string(got) != "facade" {
		t.Errorf("echo through facade: %q, %v", got, err)
	}
}

// TestFacadeVerdictCache: the WithVerdictCache censor option wires the
// fast path through the facade — the cache counts lookups, and a
// repeated payload hits without changing the verdict pipeline's
// behaviour (the in-depth equivalence suites live in internal/gfw).
func TestFacadeVerdictCache(t *testing.T) {
	sim := sslab.NewSim(sslab.WithSeed(5))
	net := sslab.NewNetwork(sim)
	g := sslab.NewCensor(sslab.CensorEnv{Sim: sim, Net: net}, sslab.WithVerdictCache(1024))

	client := sslab.Endpoint{IP: "101.32.0.2", Port: 55000}
	server := sslab.Endpoint{IP: "178.62.0.1", Port: 8388}
	payload := bytes.Repeat([]byte{0x5a, 0x13, 0xc7}, 120)
	for i := 0; i < 5; i++ {
		net.Connect(client, server, payload, false, time.Time{})
	}
	sim.Run()
	hits, misses, _ := g.CacheStats()
	if misses == 0 {
		t.Fatal("verdict cache never consulted through the facade")
	}
	if hits != 4 {
		t.Errorf("repeated payload hit %d times, want 4", hits)
	}
}

// TestFacadeExperimentRunners: every Run* wrapper produces a renderable
// report.
func TestFacadeExperimentRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runners are exercised in internal/experiment")
	}
	r, err := sslab.RunReactionMatrices(sslab.MatrixConfig{Seed: 3, Trials: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Render()) == 0 {
		t.Error("empty render")
	}
	if sslab.Version == "" {
		t.Error("version unset")
	}
}

func startTCPEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}
