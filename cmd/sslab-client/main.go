// Command sslab-client runs a local SOCKS5 proxy that tunnels traffic
// through a Shadowsocks server, optionally with brdgrd-style first-flight
// shaping (the §7.1 mitigation) applied on the client side.
//
// Usage:
//
//	sslab-client -server HOST:8388 -method chacha20-ietf-poly1305 -password SECRET \
//	    [-socks 127.0.0.1:1080] [-shape MIN:MAX]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"sslab/internal/defense"
	"sslab/internal/ssclient"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("sslab-client: ")
	var (
		server   = flag.String("server", "", "Shadowsocks server (host:port, required)")
		method   = flag.String("method", "chacha20-ietf-poly1305", "cipher method")
		password = flag.String("password", "", "shared password (required)")
		socks    = flag.String("socks", "127.0.0.1:1080", "local SOCKS5 listen address")
		shape    = flag.String("shape", "", "split the first flight into MIN:MAX byte segments (brdgrd-style)")
	)
	flag.Parse()
	if *server == "" || *password == "" {
		fmt.Fprintln(os.Stderr, "sslab-client: -server and -password are required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := ssclient.Config{Server: *server, Method: *method, Password: *password}
	if *shape != "" {
		lo, hi, err := parseShape(*shape)
		if err != nil {
			log.Fatal(err)
		}
		guard := defense.NewBrdgrd(lo, hi, time.Now().UnixNano())
		cfg.Shaper = guard.ConnShaper()
		log.Printf("first-flight shaping active: %d–%d byte segments", lo, hi)
	}
	client, err := ssclient.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *socks)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("SOCKS5 on %s → %s (%s)", ln.Addr(), *server, *method)
	log.Fatal(client.ServeSOCKS5(ln))
}

func parseShape(s string) (lo, hi int, err error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad -shape %q, want MIN:MAX", s)
	}
	lo, err1 := strconv.Atoi(a)
	hi, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil || lo < 1 || hi < lo {
		return 0, 0, fmt.Errorf("bad -shape %q, want 1 <= MIN <= MAX", s)
	}
	return lo, hi, nil
}
