// Command sslab-vet runs the repository's custom static-analysis suite:
// determinism, crypto, allocation and API-convention invariants that
// ordinary go vet cannot express.
//
//	go run ./cmd/sslab-vet ./...
//
// Analyzers (each scoped to the packages where its invariant holds; see
// CONTRIBUTING.md):
//
//	detrand      no global math/rand or wall-clock seeds in simulator code
//	simclock     no time.Now/Sleep/After in discrete-event packages
//	cryptorand   no math/rand in the Shadowsocks crypto/protocol packages
//	errpropagate no dropped errors on packet-path writes
//	seedfork     no child seeds derived by arithmetic; use seedfork.Fork
//	maporder     no order-dependent sinks inside range-over-map loops
//	hotpath      no closures/fmt/boxing/growing appends in //sslab:hotpath funcs
//	optorder     functional-options convention (apply-before-read, With* types)
//
// Findings can be waived line-by-line with //sslab:allow-<analyzer>
// followed by a justification; the name must match a registered
// analyzer exactly, or the directive suppresses nothing and -stale
// reports it. -json emits one finding per line (suppressed findings
// included, marked). Exit status: 0 clean, 1 findings (or stale
// directives under -stale), 2 tool error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sslab/internal/analysis"
	"sslab/internal/analysis/cryptorand"
	"sslab/internal/analysis/detrand"
	"sslab/internal/analysis/errpropagate"
	"sslab/internal/analysis/hotpath"
	"sslab/internal/analysis/maporder"
	"sslab/internal/analysis/optorder"
	"sslab/internal/analysis/seedfork"
	"sslab/internal/analysis/simclock"
)

var all = []*analysis.Analyzer{
	cryptorand.Analyzer,
	detrand.Analyzer,
	errpropagate.Analyzer,
	hotpath.Analyzer,
	maporder.Analyzer,
	optorder.Analyzer,
	seedfork.Analyzer,
	simclock.Analyzer,
}

func main() {
	os.Exit(run())
}

// jsonFinding is the -json wire shape: one object per line.
type jsonFinding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func run() int {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit one JSON finding per line (suppressed findings included, marked)")
	stale := flag.Bool("stale", false, "also report //sslab:allow-* directives naming no registered analyzer; they count as findings")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sslab-vet [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Packages default to ./... relative to the module root.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "sslab-vet: unknown analyzer %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}
	// Directive validation always uses the full registry: -only detrand
	// must not misreport an allow-simclock directive as stale.
	known := make([]string, len(all))
	for i, a := range all {
		known[i] = a.Name
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sslab-vet: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sslab-vet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sslab-vet: %v\n", err)
		return 2
	}
	res, err := analysis.RunDetailed(selected, known, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sslab-vet: %v\n", err)
		return 2
	}

	rel := func(name string) string {
		r, err := filepath.Rel(root, name)
		if err != nil || strings.HasPrefix(r, "..") {
			return name
		}
		return r
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		emit := func(d analysis.Diagnostic, suppressed bool) int {
			if err := enc.Encode(jsonFinding{
				Analyzer:   d.Analyzer,
				File:       rel(d.Pos.Filename),
				Line:       d.Pos.Line,
				Column:     d.Pos.Column,
				Message:    d.Message,
				Suppressed: suppressed,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "sslab-vet: %v\n", err)
				return 2
			}
			return 0
		}
		for _, d := range res.Diags {
			if rc := emit(d, false); rc != 0 {
				return rc
			}
		}
		for _, d := range res.Suppressed {
			if rc := emit(d, true); rc != 0 {
				return rc
			}
		}
	} else {
		for _, d := range res.Diags {
			fmt.Printf("%s:%d:%d: [%s] %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}

	bad := len(res.Diags)
	if *stale {
		for _, d := range res.Stale {
			fmt.Printf("%s:%d:%d: stale directive //sslab:allow-%s names no registered analyzer\n",
				rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer)
		}
		bad += len(res.Stale)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "sslab-vet: %d finding(s)\n", bad)
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
