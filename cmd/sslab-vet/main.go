// Command sslab-vet runs the repository's custom static-analysis suite:
// determinism and crypto invariants that ordinary go vet cannot express.
//
//	go run ./cmd/sslab-vet ./...
//
// Analyzers (each scoped to the packages where its invariant holds; see
// CONTRIBUTING.md):
//
//	detrand      no global math/rand or wall-clock seeds in simulator code
//	simclock     no time.Now/Sleep/After in discrete-event packages
//	cryptorand   no math/rand in the Shadowsocks crypto/protocol packages
//	errpropagate no dropped errors on packet-path writes
//
// Findings can be waived line-by-line with //sslab:allow-<analyzer>
// followed by a justification. Exit status: 0 clean, 1 findings, 2 tool
// error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sslab/internal/analysis"
	"sslab/internal/analysis/cryptorand"
	"sslab/internal/analysis/detrand"
	"sslab/internal/analysis/errpropagate"
	"sslab/internal/analysis/simclock"
)

var all = []*analysis.Analyzer{
	cryptorand.Analyzer,
	detrand.Analyzer,
	errpropagate.Analyzer,
	simclock.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sslab-vet [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Packages default to ./... relative to the module root.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "sslab-vet: unknown analyzer %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sslab-vet: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sslab-vet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sslab-vet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(selected, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sslab-vet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = d.Pos.Filename
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sslab-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
