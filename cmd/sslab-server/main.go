// Command sslab-server runs a Shadowsocks proxy server that can emulate
// any of the implementation behaviours the paper studied — or the
// hardened post-disclosure profile (the default).
//
// Usage:
//
//	sslab-server -listen :8388 -method chacha20-ietf-poly1305 -password SECRET \
//	    [-profile hardened|libev-old|libev-new|outline-1.0.6|outline-1.0.7|outline-1.1.0] \
//	    [-timeout 60s] [-verbose]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"sslab/internal/reaction"
	"sslab/internal/sscrypto"
	"sslab/internal/ssserver"
)

var profiles = map[string]reaction.Profile{
	"libev-old":     reaction.LibevOld,
	"libev-new":     reaction.LibevNew,
	"outline-1.0.6": reaction.Outline106,
	"outline-1.0.7": reaction.Outline107,
	"outline-1.1.0": reaction.Outline110,
	"ss-python":     reaction.SSPython,
	"ssr":           reaction.SSR,
	"hardened":      reaction.Hardened,
}

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("sslab-server: ")
	var (
		listen   = flag.String("listen", ":8388", "listen address")
		method   = flag.String("method", "chacha20-ietf-poly1305", "cipher method ("+strings.Join(sscrypto.Methods(), ", ")+")")
		password = flag.String("password", "", "shared password (required)")
		profile  = flag.String("profile", "hardened", "behaviour profile: "+profileNames())
		timeout  = flag.Duration("timeout", 60*time.Second, "idle/protocol timeout")
		verbose  = flag.Bool("verbose", false, "log connection events")
		udp      = flag.Bool("udp", false, "also relay UDP on the same port")
	)
	flag.Parse()
	if *password == "" {
		fmt.Fprintln(os.Stderr, "sslab-server: -password is required")
		flag.Usage()
		os.Exit(2)
	}
	p, ok := profiles[*profile]
	if !ok {
		log.Fatalf("unknown profile %q (want one of %s)", *profile, profileNames())
	}

	cfg := ssserver.Config{
		Method: *method, Password: *password, Profile: p, Timeout: *timeout,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv, err := ssserver.Listen(*listen, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (%s, %s %s)", srv.Addr(), *method, p.Name, p.Versions)
	if *udp {
		pc, err := net.ListenPacket("udp", *listen)
		if err != nil {
			log.Fatalf("udp listen: %v", err)
		}
		defer pc.Close()
		go srv.ServeUDP(pc)
		log.Printf("relaying UDP on %s", pc.LocalAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("shutting down: accepted=%d proxied=%d auth-errors=%d replays-blocked=%d",
		srv.Stats.Accepted.Load(), srv.Stats.Proxied.Load(),
		srv.Stats.AuthErrors.Load(), srv.Stats.ReplaysBlocked.Load())
	srv.Close()
}

func profileNames() string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
