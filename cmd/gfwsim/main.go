// Command gfwsim re-runs the paper's experiments on the simulated
// substrate and prints every table and figure. With no flags it runs
// everything at a reduced scale; -full runs at the paper's scale
// (four months of virtual time — still seconds of wall-clock).
//
// Usage:
//
//	gfwsim [-seed N] [-full] [-experiment all|NAME] [-json FILE] [-dump FILE]
//	       [-cpuprofile FILE] [-memprofile FILE] [-list]
//	       [-shards N] [-snapshot-at H -snapshot-out FILE | -resume FILE]
//
// -list prints the registered experiments with one-line descriptions
// and exits.
//
// -json appends one campaign.ShardResult per experiment to FILE — the
// same JSONL schema sslab-sweep checkpoints — so single runs and sweep
// shards are interchangeable records.
//
// -snapshot-at/-snapshot-out and -resume checkpoint the fleet
// experiment: the former runs the fleet to virtual hour H and writes
// the engine snapshot instead of a report; the latter restores a
// snapshot and finishes the run. A resumed run's report is
// byte-identical to an uninterrupted one. Both require
// -experiment fleet; -shards overrides the fleet's space partition.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"sslab/internal/campaign"
	"sslab/internal/experiment"
	"sslab/internal/fleet"
	"sslab/internal/netsim"
	"sslab/internal/prof"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfwsim: ")
	var (
		seed     = flag.Int64("seed", 1, "random seed (all results are deterministic per seed)")
		full     = flag.Bool("full", false, "run at the paper's scale instead of the fast default")
		exp      = flag.String("experiment", "all", "which experiment to run: all, or one of "+strings.Join(experiment.Names(), ", "))
		jsonOut  = flag.String("json", "", "append each experiment's report to FILE as JSONL (sslab-sweep shard schema)")
		dumpFile = flag.String("dump", "", "write the Shadowsocks experiment's probe capture to FILE as JSONL")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to FILE (go tool pprof format)")
		memProf  = flag.String("memprofile", "", "write a heap profile to FILE at exit")
		list     = flag.Bool("list", false, "list registered experiments with descriptions and exit")
		workers  = flag.Int("workers", 0, "intra-run worker pool for experiments that support it (fleet, armsrace, spatiotemporal); 0 = all cores; reports are byte-identical for any value")
		shards   = flag.Int("shards", 0, "override the fleet experiment's space-shard count (fleet only)")
		snapAt   = flag.Float64("snapshot-at", 0, "virtual hour at which to snapshot the fleet run (with -snapshot-out)")
		snapOut  = flag.String("snapshot-out", "", "write the fleet engine snapshot to FILE and exit (fleet only)")
		resume   = flag.String("resume", "", "restore a fleet engine snapshot from FILE and finish the run (fleet only)")
	)
	flag.Parse()

	if *list {
		listExperiments(os.Stdout)
		return
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
	}()

	// Validate -experiment before any simulation runs: a typo should
	// fail in milliseconds, not after a four-month virtual sweep.
	if *exp != "all" {
		if _, ok := experiment.Lookup(*exp); !ok {
			log.Fatalf("unknown experiment %q; valid names: all, %s", *exp, strings.Join(experiment.Names(), ", "))
		}
	}
	staged := *snapOut != "" || *resume != ""
	if staged && *exp != "fleet" {
		log.Fatal("-snapshot-out and -resume require -experiment fleet")
	}
	if *snapOut != "" && *snapAt <= 0 {
		log.Fatal("-snapshot-out requires a positive -snapshot-at hour")
	}
	if (*shards != 0 || *snapAt != 0) && *exp != "fleet" {
		log.Fatal("-shards and -snapshot-at apply to -experiment fleet only")
	}

	var jsonl *os.File
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatalf("creating %s: %v", *jsonOut, err)
		}
		defer f.Close()
		jsonl = f
	}

	records := 0
	for _, r := range experiment.Runners() {
		if *exp != "all" && *exp != r.Name() {
			continue
		}
		cfg := r.Config(*seed, *full)
		if fc, ok := cfg.(*fleet.Config); ok && *shards > 0 {
			fc.Shards = *shards
		}
		var rep experiment.Report
		var err error
		if staged && r.Name() == "fleet" {
			rep, err = fleetStaged(cfg.(*fleet.Config), *workers, *snapAt, *snapOut, *resume)
			if err == nil && rep == nil {
				continue // snapshot written; nothing to report yet
			}
		} else if wr, ok := r.(experiment.WorkersRunner); ok {
			rep, err = wr.RunWorkers(cfg, *workers)
		} else {
			rep, err = r.Run(cfg)
		}
		if err != nil {
			log.Fatalf("%s experiment: %v", r.Name(), err)
		}
		fmt.Println(rep.Render())

		if ss, ok := rep.(*experiment.ShadowsocksReport); ok && *dumpFile != "" {
			f, err := os.Create(*dumpFile)
			if err != nil {
				log.Fatalf("creating %s: %v", *dumpFile, err)
			}
			if err := ss.Log.WriteJSON(f); err != nil {
				log.Fatalf("writing capture: %v", err)
			}
			f.Close()
			fmt.Printf("wrote %d probe records to %s\n\n", ss.Log.Len(), *dumpFile)
		}

		if jsonl != nil {
			raw, err := json.Marshal(rep)
			if err != nil {
				log.Fatalf("%s report: %v", r.Name(), err)
			}
			row := campaign.ShardResult{
				Index:      records,
				Experiment: r.Name(),
				Seed:       *seed,
				Report:     raw,
			}
			line, err := json.Marshal(row)
			if err != nil {
				log.Fatalf("%s record: %v", r.Name(), err)
			}
			if _, err := jsonl.Write(append(line, '\n')); err != nil {
				log.Fatalf("writing %s: %v", *jsonOut, err)
			}
			records++
		}
	}
	if jsonl != nil {
		fmt.Printf("wrote %d report records to %s\n", records, *jsonOut)
	}
}

// fleetStaged drives the fleet experiment through the Engine API:
// fresh from cfg, or restored from a snapshot file. In snapshot mode
// it runs to the requested virtual hour, writes the snapshot, and
// returns a nil report (the run continues in a later -resume
// invocation); otherwise it finishes the run and returns the report —
// byte-identical to an uninterrupted fleet.Run.
func fleetStaged(cfg *fleet.Config, workers int, snapAt float64, snapOut, resume string) (experiment.Report, error) {
	var e *fleet.Engine
	if resume != "" {
		data, err := os.ReadFile(resume)
		if err != nil {
			return nil, err
		}
		if e, err = fleet.Restore(data, fleet.WithWorkers(workers)); err != nil {
			return nil, err
		}
	} else {
		var err error
		if e, err = fleet.NewEngine(*cfg, fleet.WithWorkers(workers)); err != nil {
			return nil, err
		}
	}
	if snapOut != "" {
		at := netsim.Epoch.Add(time.Duration(snapAt * float64(time.Hour)))
		if err := e.RunTo(at); err != nil {
			return nil, err
		}
		data, err := e.Snapshot()
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(snapOut, data, 0o644); err != nil {
			return nil, err
		}
		fmt.Printf("wrote %d-byte fleet snapshot at virtual hour %g to %s\n\n", len(data), snapAt, snapOut)
		return nil, nil
	}
	if err := e.RunTo(e.End()); err != nil {
		return nil, err
	}
	return e.Report()
}

// listExperiments prints the registry in presentation order, aligned.
func listExperiments(w io.Writer) {
	rs := experiment.Runners()
	width := 0
	for _, r := range rs {
		if len(r.Name()) > width {
			width = len(r.Name())
		}
	}
	for _, r := range rs {
		fmt.Fprintf(w, "%-*s  %s\n", width, r.Name(), r.Description())
	}
}
