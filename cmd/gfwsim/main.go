// Command gfwsim re-runs the paper's experiments on the simulated
// substrate and prints every table and figure. With no flags it runs
// everything at a reduced scale; -full runs at the paper's scale
// (four months of virtual time — still seconds of wall-clock).
//
// Usage:
//
//	gfwsim [-seed N] [-full] [-experiment all|NAME] [-json FILE] [-dump FILE]
//	       [-cpuprofile FILE] [-memprofile FILE] [-list]
//
// -list prints the registered experiments with one-line descriptions
// and exits.
//
// -json appends one campaign.ShardResult per experiment to FILE — the
// same JSONL schema sslab-sweep checkpoints — so single runs and sweep
// shards are interchangeable records.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"sslab/internal/campaign"
	"sslab/internal/experiment"
	"sslab/internal/prof"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfwsim: ")
	var (
		seed     = flag.Int64("seed", 1, "random seed (all results are deterministic per seed)")
		full     = flag.Bool("full", false, "run at the paper's scale instead of the fast default")
		exp      = flag.String("experiment", "all", "which experiment to run: all, or one of "+strings.Join(experiment.Names(), ", "))
		jsonOut  = flag.String("json", "", "append each experiment's report to FILE as JSONL (sslab-sweep shard schema)")
		dumpFile = flag.String("dump", "", "write the Shadowsocks experiment's probe capture to FILE as JSONL")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to FILE (go tool pprof format)")
		memProf  = flag.String("memprofile", "", "write a heap profile to FILE at exit")
		list     = flag.Bool("list", false, "list registered experiments with descriptions and exit")
		workers  = flag.Int("workers", 0, "intra-run worker pool for experiments that support it (fleet, armsrace); 0 = all cores; reports are byte-identical for any value")
	)
	flag.Parse()

	if *list {
		listExperiments(os.Stdout)
		return
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
	}()

	// Validate -experiment before any simulation runs: a typo should
	// fail in milliseconds, not after a four-month virtual sweep.
	if *exp != "all" {
		if _, ok := experiment.Lookup(*exp); !ok {
			log.Fatalf("unknown experiment %q; valid names: all, %s", *exp, strings.Join(experiment.Names(), ", "))
		}
	}

	var jsonl *os.File
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatalf("creating %s: %v", *jsonOut, err)
		}
		defer f.Close()
		jsonl = f
	}

	records := 0
	for _, r := range experiment.Runners() {
		if *exp != "all" && *exp != r.Name() {
			continue
		}
		var rep experiment.Report
		var err error
		if wr, ok := r.(experiment.WorkersRunner); ok {
			rep, err = wr.RunWorkers(r.Config(*seed, *full), *workers)
		} else {
			rep, err = r.Run(r.Config(*seed, *full))
		}
		if err != nil {
			log.Fatalf("%s experiment: %v", r.Name(), err)
		}
		fmt.Println(rep.Render())

		if ss, ok := rep.(*experiment.ShadowsocksReport); ok && *dumpFile != "" {
			f, err := os.Create(*dumpFile)
			if err != nil {
				log.Fatalf("creating %s: %v", *dumpFile, err)
			}
			if err := ss.Log.WriteJSON(f); err != nil {
				log.Fatalf("writing capture: %v", err)
			}
			f.Close()
			fmt.Printf("wrote %d probe records to %s\n\n", ss.Log.Len(), *dumpFile)
		}

		if jsonl != nil {
			raw, err := json.Marshal(rep)
			if err != nil {
				log.Fatalf("%s report: %v", r.Name(), err)
			}
			row := campaign.ShardResult{
				Index:      records,
				Experiment: r.Name(),
				Seed:       *seed,
				Report:     raw,
			}
			line, err := json.Marshal(row)
			if err != nil {
				log.Fatalf("%s record: %v", r.Name(), err)
			}
			if _, err := jsonl.Write(append(line, '\n')); err != nil {
				log.Fatalf("writing %s: %v", *jsonOut, err)
			}
			records++
		}
	}
	if jsonl != nil {
		fmt.Printf("wrote %d report records to %s\n", records, *jsonOut)
	}
}

// listExperiments prints the registry in presentation order, aligned.
func listExperiments(w io.Writer) {
	rs := experiment.Runners()
	width := 0
	for _, r := range rs {
		if len(r.Name()) > width {
			width = len(r.Name())
		}
	}
	for _, r := range rs {
		fmt.Fprintf(w, "%-*s  %s\n", width, r.Name(), r.Description())
	}
}
