// Command gfwsim re-runs the paper's experiments on the simulated
// substrate and prints every table and figure. With no flags it runs
// everything at a reduced scale; -full runs at the paper's scale
// (four months of virtual time — still seconds of wall-clock).
//
// Usage:
//
//	gfwsim [-seed N] [-full] [-experiment all|table1|shadowsocks|sink|brdgrd|matrix] [-dump FILE]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sslab/internal/experiment"
	"sslab/internal/gfw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfwsim: ")
	var (
		seed = flag.Int64("seed", 1, "random seed (all results are deterministic per seed)")
		full = flag.Bool("full", false, "run at the paper's scale instead of the fast default")
		exp  = flag.String("experiment", "all", "which experiment to run: all, table1, shadowsocks, sink, brdgrd, blocking, matrix, fpstudy, banstudy, mimicstudy, probecost")
		dump = flag.String("dump", "", "write the Shadowsocks experiment's probe capture to FILE as JSONL")
	)
	flag.Parse()

	run := func(name string) bool { return *exp == "all" || *exp == name }

	if run("table1") {
		fmt.Println(experiment.Table1().Render())
	}

	if run("shadowsocks") {
		cfg := experiment.ShadowsocksConfig{Seed: *seed}
		if !*full {
			cfg.Days = 20
			cfg.ConnsPerPairPerHour = 80
			cfg.GFW = gfw.Config{PoolSize: 6000}
		}
		r, err := experiment.ShadowsocksExperiment(cfg)
		if err != nil {
			log.Fatalf("shadowsocks experiment: %v", err)
		}
		fmt.Println(r.Render())
		if *dump != "" {
			f, err := os.Create(*dump)
			if err != nil {
				log.Fatalf("creating %s: %v", *dump, err)
			}
			if err := r.Log.WriteJSON(f); err != nil {
				log.Fatalf("writing capture: %v", err)
			}
			f.Close()
			fmt.Printf("wrote %d probe records to %s\n\n", r.Log.Len(), *dump)
		}
	}

	if run("sink") {
		cfg := experiment.SinkConfig{Seed: *seed}
		if !*full {
			cfg.Hours = 80
			cfg.ConnsPerHour = 2000
			cfg.GFW = gfw.Config{PoolSize: 4000}
		}
		r, err := experiment.SinkExperiments(cfg)
		if err != nil {
			log.Fatalf("sink experiments: %v", err)
		}
		fmt.Println(r.Render())
	}

	if run("brdgrd") {
		cfg := experiment.BrdgrdConfig{Seed: *seed}
		if !*full {
			cfg.Hours = 200
			cfg.OnWindows = [][2]int{{60, 110}, {150, 180}}
			cfg.GFW = gfw.Config{PoolSize: 4000}
		}
		r, err := experiment.BrdgrdExperiment(cfg)
		if err != nil {
			log.Fatalf("brdgrd experiment: %v", err)
		}
		fmt.Println(r.Render())
	}

	if run("blocking") {
		cfg := experiment.BlockingConfig{Seed: *seed}
		if !*full {
			cfg.Days = 20
			cfg.GFW = gfw.Config{PoolSize: 4000}
		}
		r, err := experiment.BlockingExperiment(cfg)
		if err != nil {
			log.Fatalf("blocking experiment: %v", err)
		}
		fmt.Println(r.Render())
	}

	if run("fpstudy") {
		cfg := experiment.FPStudyConfig{Seed: *seed}
		if !*full {
			cfg.FlowsPerKind = 40000
			cfg.GFW = gfw.Config{PoolSize: 3000}
		}
		r, err := experiment.FPStudy(cfg)
		if err != nil {
			log.Fatalf("fp study: %v", err)
		}
		fmt.Println(r.Render())
	}

	if run("banstudy") {
		cfg := experiment.BanStudyConfig{Seed: *seed}
		if !*full {
			cfg.Triggers = 120000
			cfg.GFW = gfw.Config{PoolSize: 4000}
		}
		r, err := experiment.BanStudy(cfg)
		if err != nil {
			log.Fatalf("ban study: %v", err)
		}
		fmt.Println(r.Render())
	}

	if run("mimicstudy") {
		cfg := experiment.MimicStudyConfig{Seed: *seed}
		if !*full {
			cfg.Triggers = 60000
			cfg.GFW = gfw.Config{PoolSize: 3000}
		}
		r, err := experiment.MimicStudy(cfg)
		if err != nil {
			log.Fatalf("mimic study: %v", err)
		}
		fmt.Println(r.Render())
	}

	if run("probecost") {
		cfg := experiment.ProbeCostConfig{Seed: *seed, Trials: 100}
		if !*full {
			cfg.Trials = 50
		}
		r, err := experiment.ProbeCost(cfg)
		if err != nil {
			log.Fatalf("probe cost: %v", err)
		}
		fmt.Println(r.Render())
	}

	if run("matrix") {
		cfg := experiment.MatrixConfig{Seed: *seed, Trials: 200}
		if !*full {
			cfg.Trials = 60
		}
		r, err := experiment.ReactionMatrices(cfg)
		if err != nil {
			log.Fatalf("reaction matrices: %v", err)
		}
		fmt.Println(r.Render())
	}
}
