// Command sslab-sweep fans one experiment out over a seed list and an
// optional parameter grid, runs the shards on a bounded worker pool,
// and reduces them into a single deterministic report: the merged JSON
// is byte-identical for any -workers value, and a killed sweep resumes
// from its JSONL checkpoint without recomputing finished shards.
//
// Usage:
//
//	sslab-sweep -experiment shadowsocks -seeds 1..8 [-workers 8]
//	            [-run-workers N] [-grid GFW.PoolSize=4000,8000]
//	            [-set Days=30] [-full] [-out DIR] [-resume] [-json]
//	            [-metrics] [-cpuprofile FILE] [-memprofile FILE] [-list]
//
// -list prints the sweepable experiments with one-line descriptions
// and exits.
//
// With -out DIR the sweep checkpoints every finished shard to
// DIR/shards.jsonl and writes DIR/merged.json at the end; re-running
// with -resume picks up where the previous run stopped. -grid may
// repeat, one axis per flag; the cross product of all axes times the
// seed list is the shard set. -json prints the merged report as JSON on
// stdout instead of the human summary.
//
// -metrics prints the engine's counter snapshot to stderr after the
// sweep; metrics never feed the merged report, so its byte-identity
// across -workers values is unaffected. -cpuprofile/-memprofile write
// pprof profiles of the whole sweep.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"sslab/internal/campaign"
	"sslab/internal/experiment"
	"sslab/internal/metrics"
	"sslab/internal/prof"
)

// listFlag collects a repeatable string flag (-grid, -set).
type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, "; ") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("sslab-sweep: ")
	var (
		expName  = flag.String("experiment", "", "experiment to sweep (one of "+strings.Join(experiment.Names(), ", ")+")")
		seedList = flag.String("seeds", "1..8", "seed list: comma-separated integers and A..B ranges")
		workers  = flag.Int("workers", 0, "worker pool size (default GOMAXPROCS); does not affect results")
		runWork  = flag.Int("run-workers", 0, "intra-run worker pool per shard for experiments that support it (fleet, armsrace, spatiotemporal; default 1); does not affect results")
		full     = flag.Bool("full", false, "paper scale instead of the fast default")
		outDir   = flag.String("out", "", "checkpoint directory (spec.json, shards.jsonl, merged.json)")
		resume   = flag.Bool("resume", false, "reuse finished shards checkpointed in -out")
		jsonOut  = flag.Bool("json", false, "print the merged report as JSON instead of the summary")
		quiet    = flag.Bool("quiet", false, "suppress the per-shard progress line")
		showMet  = flag.Bool("metrics", false, "print the engine's metrics snapshot to stderr after the sweep")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to FILE (go tool pprof format)")
		memProf  = flag.String("memprofile", "", "write a heap profile to FILE at exit")
		list     = flag.Bool("list", false, "list sweepable experiments with descriptions and exit")
		grid     listFlag
		sets     listFlag
	)
	flag.Var(&grid, "grid", "grid axis key=v1,v2,… (repeatable; cross product of axes)")
	flag.Var(&sets, "set", "fixed config override key=value (repeatable, applies to every shard)")
	flag.Parse()

	if *list {
		rs := experiment.Runners()
		width := 0
		for _, r := range rs {
			if len(r.Name()) > width {
				width = len(r.Name())
			}
		}
		for _, r := range rs {
			fmt.Printf("%-*s  %s\n", width, r.Name(), r.Description())
		}
		return
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
	}()

	if *expName == "" {
		log.Fatalf("-experiment is required; valid names: %s", strings.Join(experiment.Names(), ", "))
	}
	if _, ok := experiment.Lookup(*expName); !ok {
		log.Fatalf("unknown experiment %q; valid names: %s", *expName, strings.Join(experiment.Names(), ", "))
	}
	if *resume && *outDir == "" {
		log.Fatal("-resume needs -out")
	}

	seeds, err := campaign.ParseSeeds(*seedList)
	if err != nil {
		log.Fatalf("-seeds: %v", err)
	}
	spec := campaign.Spec{Experiment: *expName, Seeds: seeds, Full: *full}
	for _, s := range sets {
		p, err := campaign.ParseParam(s)
		if err != nil {
			log.Fatalf("-set: %v", err)
		}
		spec.Base = append(spec.Base, p)
	}
	for _, g := range grid {
		a, err := campaign.ParseAxis(g)
		if err != nil {
			log.Fatalf("-grid: %v", err)
		}
		spec.Grid = append(spec.Grid, a)
	}

	// Progress and ETA live here, not in internal/campaign: the engine
	// is wall-clock-free by contract (the simclock analyzer enforces
	// it), and the merged report must not depend on timing.
	start := time.Now()
	progress := func(done, total int, r campaign.ShardResult) {
		if *quiet {
			return
		}
		status := "ok"
		if r.Err != "" {
			status = "FAILED: " + r.Err
		}
		elapsed := time.Since(start)
		eta := "-"
		if done > 0 && done < total {
			remaining := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
			eta = remaining.Round(time.Second).String()
		}
		fmt.Fprintf(os.Stderr, "[%d/%d] seed=%d %s eta=%s %s\n",
			done, total, r.Seed, formatParams(r.GridPoint), eta, status)
	}

	var reg *metrics.Registry
	if *showMet {
		reg = metrics.New()
	}
	rep, err := campaign.Run(spec, campaign.Options{
		Workers:    *workers,
		RunWorkers: *runWork,
		Dir:        *outDir,
		Resume:     *resume,
		OnProgress: progress,
		Metrics:    reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweep of %d shards finished in %s (%d failed)\n",
			rep.Shards, time.Since(start).Round(time.Millisecond), rep.Failed)
	}
	if reg != nil {
		fmt.Fprint(os.Stderr, reg.Snapshot().String())
	}

	if *jsonOut {
		b, err := rep.MarshalIndent()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(b)
		return
	}
	fmt.Print(summarize(rep))
}

func formatParams(ps []campaign.Param) string {
	if len(ps) == 0 {
		return "-"
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.Key + "=" + p.Value
	}
	return strings.Join(parts, " ")
}

// summarize renders the merged report for terminals: one section per
// grid point, metrics as mean ± CI over the seed list.
func summarize(rep *campaign.MergedReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== sweep: %s over %d seed(s), %d shard(s), %d failed ==\n",
		rep.Experiment, len(rep.Seeds), rep.Shards, rep.Failed)
	if len(rep.Base) > 0 {
		fmt.Fprintf(&b, "base overrides: %s\n", formatParams(rep.Base))
	}
	for _, g := range rep.Groups {
		fmt.Fprintf(&b, "\n-- %s (n=%d seeds) --\n", formatParams(g.GridPoint), len(g.Seeds))
		for _, e := range g.Errors {
			fmt.Fprintf(&b, "  seed %d FAILED: %s\n", e.Seed, e.Err)
		}
		if len(g.Metrics) > 0 {
			w := 0
			for _, m := range g.Metrics {
				if len(m.Name) > w {
					w = len(m.Name)
				}
			}
			for _, m := range g.Metrics {
				fmt.Fprintf(&b, "  %-*s  mean %.6g  ci95 [%.6g, %.6g]  min %.6g  max %.6g  n=%d\n",
					w, m.Name, m.Mean, m.CILo, m.CIHi, m.Min, m.Max, m.N)
			}
		}
		for _, h := range g.Histograms {
			fmt.Fprintf(&b, "  %s: histogram, %d observations over %d bins\n", h.Name, h.Total, len(h.Counts))
		}
		for _, c := range g.CDFs {
			fmt.Fprintf(&b, "  %s: cdf n=%d min %.6g p50 %.6g p90 %.6g max %.6g\n",
				c.Name, c.N, c.Min, c.P50, c.P90, c.Max)
		}
	}
	return b.String()
}
