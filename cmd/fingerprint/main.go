// Command fingerprint analyzes a probe capture (as written by
// gfwsim -dump) the way §3.3–§3.5 of the paper analyzes real packet
// captures: per-IP reuse, AS attribution, source-port distribution, TCP
// timestamp process clustering, and replay-delay statistics.
//
// Usage:
//
//	fingerprint CAPTURE.jsonl
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"sslab/internal/capture"
	"sslab/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fingerprint: ")
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: fingerprint CAPTURE.jsonl")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	l, err := capture.ReadJSON(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d probes\n\n", l.Len())

	per := l.ProbesPerIP()
	maxPer := 0
	for _, c := range per {
		if c > maxPer {
			maxPer = c
		}
	}
	fmt.Printf("prober IPs: %d unique, %.0f%% used more than once, max %d probes from one IP\n",
		len(per), l.MultiUseFraction()*100, maxPer)
	fmt.Println("top prober IPs:")
	for _, ip := range l.TopIPs(10) {
		fmt.Printf("  %-18s %d\n", ip.IP, ip.Count)
	}

	fmt.Println("\nunique prober IPs per AS:")
	as := l.ASCounts()
	type kv struct{ asn, n int }
	var rows []kv
	for a, n := range as {
		rows = append(rows, kv{a, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	for _, r := range rows {
		fmt.Printf("  AS%-6d %d\n", r.asn, r.n)
	}

	ports := l.SourcePorts()
	if ports.Len() > 0 {
		fmt.Printf("\nsource ports: %.1f%% in 32768–60999, min %.0f, max %.0f\n",
			(ports.P(60999)-ports.P(32767))*100, ports.Min(), ports.Max())
	}

	clusters := stats.ClusterTSvals(l.TSPoints(), []float64{250, 1000}, 100000)
	substantial := 0
	for i := range clusters {
		if len(clusters[i].Points) >= 10 {
			substantial++
		}
	}
	fmt.Printf("TCP timestamp processes: %d substantial clusters", substantial)
	if substantial > 0 {
		if rate, err := clusters[0].MeasuredRate(); err == nil {
			fmt.Printf(" (dominant rate %.1f Hz)", rate)
		}
	}
	fmt.Println()

	all, first := l.ReplayDelays()
	if all.Len() > 0 {
		fmt.Printf("replay delays (%d total, %d distinct payloads):\n", all.Len(), first.Len())
		fmt.Printf("  first occurrences: P(1s)=%.0f%% P(1min)=%.0f%% P(15min)=%.0f%%\n",
			first.P(1)*100, first.P(60)*100, first.P(900)*100)
		fmt.Printf("  min %.2fs, max %.1fh\n", all.Min(), all.Max()/3600)
	}

	fmt.Println("\nprobe types:")
	tc := l.TypeCounts()
	type tkv struct {
		name string
		n    int
	}
	var trows []tkv
	for t, n := range tc {
		trows = append(trows, tkv{t.String(), n})
	}
	sort.Slice(trows, func(i, j int) bool { return trows[i].n > trows[j].n })
	for _, r := range trows {
		fmt.Printf("  %-8s %d\n", r.name, r.n)
	}
}
