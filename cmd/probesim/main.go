// Command probesim is the §5.1 prober simulator for live servers: it
// sends random probes of every length 1–99 plus 221 bytes (and optionally
// a replay of a recorded payload) to a host:port and reports the reaction
// per length, reproducing the corresponding Figure 10 row for whatever
// implementation is listening.
//
// Usage:
//
//	probesim -addr HOST:PORT [-timeout 3s] [-trials 3] [-lengths 1-99,221]
//	probesim -addr HOST:PORT -replay FILE [-mutate 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"sslab/internal/probesim"
	"sslab/internal/reaction"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("probesim: ")
	var (
		addr    = flag.String("addr", "", "server to probe (host:port)")
		timeout = flag.Duration("timeout", 3*time.Second, "per-probe timeout (the GFW uses < 10 s)")
		trials  = flag.Int("trials", 3, "probes per length")
		lens    = flag.String("lengths", "1-99,221", "comma-separated lengths or ranges")
		replayF = flag.String("replay", "", "file with a recorded first payload to replay (type R1)")
		mutate  = flag.String("mutate", "", "comma-separated byte offsets to change in the replay (R2: 0; R4: 16)")
		seed    = flag.Int64("seed", time.Now().UnixNano(), "random seed for probe contents")
	)
	flag.Parse()
	if *addr == "" {
		flag.Usage()
		os.Exit(2)
	}
	p := &probesim.TCPProber{Addr: *addr, Timeout: *timeout}
	rng := rand.New(rand.NewSource(*seed))

	if *replayF != "" {
		payload, err := os.ReadFile(*replayF)
		if err != nil {
			log.Fatalf("reading replay payload: %v", err)
		}
		for _, offStr := range splitNonEmpty(*mutate) {
			off, err := strconv.Atoi(offStr)
			if err != nil || off < 0 || off >= len(payload) {
				log.Fatalf("bad mutation offset %q", offStr)
			}
			payload[off] += byte(1 + rng.Intn(255))
		}
		r, err := p.Probe(payload, time.Time{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replay (%d bytes, %d mutations): %v\n", len(payload), len(splitNonEmpty(*mutate)), r)
		return
	}

	lengths, err := probesim.ParseLengths(*lens)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probing %s: %d lengths × %d trials\n", *addr, len(lengths), *trials)
	for _, n := range lengths {
		counts := map[reaction.Reaction]int{}
		for i := 0; i < *trials; i++ {
			payload := make([]byte, n)
			rng.Read(payload)
			r, err := p.Probe(payload, time.Time{})
			if err != nil {
				log.Fatalf("len %d: %v", n, err)
			}
			counts[r]++
		}
		fmt.Printf("  len %3d: %s\n", n, summarize(counts, *trials))
	}
}

func summarize(counts map[reaction.Reaction]int, trials int) string {
	var parts []string
	for _, r := range []reaction.Reaction{reaction.Timeout, reaction.RST, reaction.FINACK, reaction.Data} {
		if c := counts[r]; c > 0 {
			parts = append(parts, fmt.Sprintf("%s×%d", r, c))
		}
	}
	return strings.Join(parts, " ")
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
