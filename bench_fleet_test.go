// BenchmarkFleet measures the population-scale engine: the netsim
// timing-wheel scheduler in steady state (must stay at 0 allocs/op) and
// a complete small fleet run (whose per-run allocation count is pinned,
// so a per-wakeup allocation sneaking into the user hot path fails the
// budget by three orders of magnitude, not by noise).
//
// Budgets live in BENCH_fleet.json, enforced by TestFleetAllocBudgets
// and the CI bench-smoke job.
package sslab_test

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"sslab/internal/fleet"
	"sslab/internal/gfw"
	"sslab/internal/netsim"
)

// TestFleetAcceptance is the ISSUE's population-scale acceptance run —
// 100k users for 24 virtual hours at the defaults — gated behind
// FLEET_ACCEPTANCE=1 because it takes tens of seconds. Targets: under
// 60 s wall and under 2 GB memory on one core.
func TestFleetAcceptance(t *testing.T) {
	if os.Getenv("FLEET_ACCEPTANCE") == "" {
		t.Skip("set FLEET_ACCEPTANCE=1 to run the 100k-user acceptance measurement")
	}
	start := time.Now()
	rep, err := fleet.Run(fleet.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	t.Logf("wall %.1fs, heap %.0f MB, sys %.0f MB", wall.Seconds(),
		float64(m.HeapAlloc)/1e6, float64(m.Sys)/1e6)
	t.Logf("\n%s", rep.Render())
	if wall > 60*time.Second {
		t.Errorf("acceptance run took %.1fs, target < 60s", wall.Seconds())
	}
	if m.Sys > 2e9 {
		t.Errorf("acceptance run used %.1f GB, target < 2 GB", float64(m.Sys)/1e9)
	}
}

// TestFleetSnapshotAcceptance measures the snapshot subsystem at
// population scale: the 100k-user acceptance fleet run to the middle
// of its 24-hour horizon, serialized, and restored. It logs snapshot
// size and save/restore wall time — the numbers recorded in
// BENCH_fleet.json — and is gated with the other acceptance runs.
func TestFleetSnapshotAcceptance(t *testing.T) {
	if os.Getenv("FLEET_ACCEPTANCE") == "" {
		t.Skip("set FLEET_ACCEPTANCE=1 to run the 100k-user snapshot measurement")
	}
	e, err := fleet.NewEngine(fleet.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunTo(netsim.Epoch.Add(12 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	data, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	save := time.Since(start)
	start = time.Now()
	if _, err := fleet.Restore(data); err != nil {
		t.Fatal(err)
	}
	restore := time.Since(start)
	t.Logf("100k users at T=12h: snapshot %.1f MB, save %.2fs, restore %.2fs",
		float64(len(data))/1e6, save.Seconds(), restore.Seconds())
}

// TestFleetScaling is the sharded engine's full-scale acceptance run:
// one million users for seven virtual days (168 h), split over eight
// space shards, once per worker-pool size. It logs the wall-clock
// scaling curve recorded in BENCH_fleet.json and verifies that every
// pool size reproduces the workers=1 report byte for byte. Gated
// behind FLEET_SCALE=1: each point takes tens of minutes on one core,
// and on a single-CPU host the curve documents byte-identity and
// sharding overhead rather than speedup (see BENCH_fleet.json).
func TestFleetScaling(t *testing.T) {
	if os.Getenv("FLEET_SCALE") == "" {
		t.Skip("set FLEET_SCALE=1 to run the million-user scaling measurement")
	}
	cfg := fleet.Config{
		Seed:           1,
		Users:          1000000,
		UsersPerServer: 50,
		Hours:          168,
		Shards:         8,
	}
	var golden []byte
	for _, workers := range []int{1, 8} {
		start := time.Now()
		rep, err := fleet.Run(cfg, fleet.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		wall := time.Since(start)
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = b
		} else if !bytes.Equal(b, golden) {
			t.Errorf("workers=%d report diverged from workers=1", workers)
		}
		t.Logf("workers=%d: wall %.1fs, heap %.0f MB, sys %.0f MB, blocked-user fraction %.4f",
			workers, wall.Seconds(), float64(m.HeapAlloc)/1e6,
			float64(m.Sys)/1e6, rep.BlockedUserFraction)
	}
}

func BenchmarkFleet(b *testing.B) {
	b.Run("WheelSchedule", benchWheelSchedule)
	b.Run("Run2k", benchFleetRun2k)
	b.Run("Run2kSharded", benchFleetRun2kSharded)
	b.Run("SnapshotSave", benchSnapshotSave)
	b.Run("SnapshotRestore", benchSnapshotRestore)
}

func nopWheelFire(any) {}

// benchWheelSchedule drives the hierarchical timing wheel the way the
// fleet does: a dense stream of timers with deltas spanning level 0 and
// level 1, drained through the simulator. One op = one timer scheduled
// and fired. A warm-up round pre-grows the slot and event-heap arrays so
// the timed region measures steady state.
func benchWheelSchedule(b *testing.B) {
	sim := netsim.NewSim()
	w := netsim.NewWheel(sim)
	round := func(n int) {
		base := sim.Now()
		for i := 0; i < n; i++ {
			w.Schedule(base.Add(time.Duration(1+i%601)*time.Second), nopWheelFire, nil)
		}
		sim.RunUntil(base.Add(602 * time.Second))
	}
	round(200000)
	b.ReportAllocs()
	b.ResetTimer()
	round(b.N)
}

// benchFleetRun2k runs a complete 2000-user, 3-virtual-hour fleet
// experiment per op. The config is fixed-seed, so the allocation count
// is deterministic: construction (user/server slices, censor state) plus
// one netsim.Flow per connection, and nothing per wake-up.
func benchFleetRun2k(b *testing.B) {
	cfg := fleet.Config{
		Seed:           1,
		Users:          2000,
		UsersPerServer: 50,
		Hours:          3,
		BucketMin:      30,
		GFW:            gfw.Config{PoolSize: 2000},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fleet.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// snapBenchEngine builds the Run2k engine and advances it to the
// middle of the horizon, where per-user wheel entries and in-flight
// censor state are at steady-state density — the worst case a snapshot
// has to serialize.
func snapBenchEngine(b *testing.B) *fleet.Engine {
	b.Helper()
	e, err := fleet.NewEngine(fleet.Config{
		Seed:           1,
		Users:          2000,
		UsersPerServer: 50,
		Hours:          3,
		BucketMin:      30,
		GFW:            gfw.Config{PoolSize: 2000},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.RunTo(netsim.Epoch.Add(90 * time.Minute)); err != nil {
		b.Fatal(err)
	}
	return e
}

// benchSnapshotSave serializes the mid-run 2000-user engine once per
// op. Snapshot is read-only (capture never mutates unit state), so
// repeated saves of the same engine are identical; the reported
// snap-bytes metric is the serialized size recorded in
// BENCH_fleet.json.
func benchSnapshotSave(b *testing.B) {
	e := snapBenchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		data, err := e.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		size = len(data)
	}
	b.ReportMetric(float64(size), "snap-bytes")
}

// benchSnapshotRestore rebuilds a live engine from the same mid-run
// snapshot once per op: decode, reconstruct every unit's simulator,
// censor and population state, and re-arm the pending event heap and
// timing-wheel entries.
func benchSnapshotRestore(b *testing.B) {
	e := snapBenchEngine(b)
	data, err := e.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fleet.Restore(data); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFleetRun2kSharded is the same population split over four space
// shards: four independent censors, networks and timing wheels plus
// the report merge. It runs the shards sequentially (WithWorkers(1))
// so the allocation count stays as deterministic as Run2k's — on a
// multi-worker pool the Go runtime's own scheduling allocations
// (goroutine parking under CPU contention) leak into allocs/op and
// vary with machine load, which would make the budget flaky. Parallel
// execution is pinned by the byte-identity tests under the race
// detector instead; this budget pins the sharded engine's per-shard
// construction and merge overhead.
func benchFleetRun2kSharded(b *testing.B) {
	cfg := fleet.Config{
		Seed:           1,
		Users:          2000,
		UsersPerServer: 50,
		Hours:          3,
		BucketMin:      30,
		Shards:         4,
		GFW:            gfw.Config{PoolSize: 2000},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fleet.Run(cfg, fleet.WithWorkers(1)); err != nil {
			b.Fatal(err)
		}
	}
}
